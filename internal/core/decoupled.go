package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/check"
	"repro/internal/conslist"
	"repro/internal/genlin"
	"repro/internal/snapshot"
	"repro/internal/spec"
)

// Decoupled is the decoupled self-enforced implementation D_{O,A} of
// Figure 12 (§9.2): producers obtain responses through A* and publish the
// sketch; dedicated verifier goroutines monitor it. Producers never wait for
// verification, so responses may be returned before an error is detected —
// the trade-off §9.2 describes — but every violation is eventually reported
// as long as one verifier survives.
//
// The verifiers form an incremental sharded pipeline rather than the paper's
// literal re-check-everything loop:
//
//   - scanner goroutines each own a partition of the producer processes;
//     they watch the result snapshot and extract each owned process's newly
//     published tuples (a delta read off the persistent cons-lists, not a
//     re-flatten of the whole sketch), run a cheap per-tuple necessary
//     condition (Remark 7.2 self-inclusion), and forward batches;
//   - one dispatcher goroutine merges the batches into the incremental
//     X(τ) assembly (IncVerifier), drives the staged monitor pipeline
//     (check.Incremental), merges scanner verdicts with the monitor verdict,
//     and deduplicates reports: one report per violation, not one per loop
//     iteration.
//
// With a single verifier goroutine the dispatcher scans and checks by
// itself. WithFullRecheck restores the paper-literal quadratic loop, kept
// for A/B benchmarks (bench_test.go) and as a correctness oracle.
type Decoupled struct {
	n   int
	drv *DRV
	obj genlin.Object
	m   snapshot.Snapshot[*conslist.Node[Tuple]]
	res []*conslist.Node[Tuple]

	onReport func(Report)
	stop     chan struct{}
	wg       sync.WaitGroup
	scanWg   sync.WaitGroup
	batches  chan tupleBatch
	full     bool

	monitor check.Config // dispatcher monitor configuration (Retain cleared under full recheck)
	retain  bool         // monitor.Retain — the assembler/scanner release machinery is on
	// epochs[p] tracks, for process p's result cons-list, how deep each
	// verifier shard (its owning scanner and the dispatcher) has consumed, so
	// the scanner can release the prefix every shard is past.
	epochs []*conslist.Epoch

	scans       atomic.Int64
	resReleased atomic.Int64
	statsMu     sync.Mutex
	stats       DecoupledStats
	verifier    *IncVerifier // dispatcher's pipeline, for CheckpointMonitor (guarded by statsMu)
}

// Shard indices of a result list's epoch tracker.
const (
	scannerShard    = 0
	dispatcherShard = 1
	epochShards     = 2
)

// absorbChunk caps how many queued tupleBatches one absorb round merges, so
// the dispatcher decides and publishes gauges between chunks even when
// producers keep the batch channel saturated (ROADMAP: chunked absorb under
// overload).
const absorbChunk = 32

// DecoupledStats aggregates the verification pipeline's counters.
type DecoupledStats struct {
	Scans               int64 // snapshot scans across all verifier goroutines
	Reports             int   // deduplicated reports issued
	ResultNodesReleased int64 // result cons-list nodes released by retention
	Verify              IncVerifyStats
	// Workers holds the monitor's per-worker-slot diagnostics under
	// WithDecoupledParallelism (nil otherwise); see check.WorkerStat.
	Workers []check.WorkerStat
}

// tupleBatch is one process's newly published tuples, forwarded by a scanner
// to the dispatcher: positions [from, from+len(tuples)) of proc's result
// list. corrupt carries a scanner-side necessary-condition verdict (empty =
// passed).
type tupleBatch struct {
	proc    int
	from    int
	tuples  []Tuple
	corrupt string
}

// DecoupledOption configures the decoupled implementation.
type DecoupledOption func(*decoupledCfg)

type decoupledCfg struct {
	drvOpts []Option
	full    bool
	monitor check.Config
}

// WithDecoupledDRV forwards options to the underlying A* construction.
func WithDecoupledDRV(opts ...Option) DecoupledOption {
	return func(c *decoupledCfg) { c.drvOpts = append(c.drvOpts, opts...) }
}

// WithFullRecheck replaces the incremental pipeline with the paper-literal
// verifier loop that re-decides the whole published history every iteration.
func WithFullRecheck() DecoupledOption {
	return func(c *decoupledCfg) { c.full = true }
}

// WithDecoupledConfig configures the dispatcher's monitor with a whole
// check.Config at once (via WithVerifierConfig) — the option a serialised
// configuration (a monitorapi session, a CLI profile) lands on. Retention
// additionally turns on the pipeline's own release machinery: the assembler
// drops tuples and truncates announce lists behind the GC horizon, and
// scanners release result cons-list prefixes once every verifier shard has
// consumed past them. Incompatible with WithFullRecheck (the paper-literal
// loop has no incremental monitor); full-recheck wins and the Config's
// retention is dropped if both are given. The per-knob wrappers below mutate
// the same Config (last write per knob wins; WithDecoupledConfig replaces
// all of them).
func WithDecoupledConfig(mc check.Config) DecoupledOption {
	return func(c *decoupledCfg) { c.monitor = mc }
}

// WithDecoupledRetention bounds the verification pipeline's memory to the
// monitoring window instead of the history length (zero policy values take
// defaults): the monitor garbage-collects committed prefixes behind its
// quiescent-cut frontier (check.WithRetention), the assembler drops tuples
// and truncates announce lists behind the GC horizon, and scanners release
// result cons-list prefixes once every verifier shard has consumed past them
// (conslist.Epoch). Incompatible with WithFullRecheck, whose loop re-reads
// the whole sketch by definition; full-recheck wins if both are given. Thin
// wrapper over check.Config (WithDecoupledConfig).
func WithDecoupledRetention(p check.RetentionPolicy) DecoupledOption {
	return func(c *decoupledCfg) { c.monitor.Retain = true; c.monitor.Retention = p }
}

// WithDecoupledParallelism gives the dispatcher's monitor a worker pool of
// width n (check.WithParallelism via WithVerifierParallelism): the
// independent per-frontier-state segment searches of one ingest pass overlap
// on the pool instead of serialising behind the single absorb loop, so a
// burst whose frontier fans out no longer stalls batch absorption for the
// sum of its refutations. Reports and verdicts are unchanged. Incompatible
// with WithFullRecheck (the paper-literal loop has no incremental monitor to
// parallelise); full-recheck wins if both are given. Only effective together
// with WithDecoupledRetention: the full-witness monitor keeps a single-state
// frontier, so without retention the pool never fans out (accepted but a
// no-op, as check.WithParallelism documents). Thin wrapper over check.Config
// (WithDecoupledConfig).
func WithDecoupledParallelism(n int) DecoupledOption {
	return func(c *decoupledCfg) { c.monitor.Parallelism = n }
}

// WithDecoupledFastTier enables or disables the dispatcher monitor's
// log-linear decision tier (check.WithFastTier via WithVerifierFastTier; on
// by default). Meaningless under WithFullRecheck, whose loop has no
// incremental monitor — callers should reject that combination. Thin wrapper
// over check.Config (WithDecoupledConfig).
func WithDecoupledFastTier(enabled bool) DecoupledOption {
	return func(c *decoupledCfg) { c.monitor.NoFastTier = !enabled }
}

// WithDecoupledPipeline overlaps the dispatcher's X(τ) assembly with the
// previous burst's segment check (check.Config.Pipeline via
// WithVerifierPipeline, DESIGN.md §2i): while the monitor runs burst N's
// Append on a dedicated checker goroutine, the dispatcher absorbs and
// assembles burst N+1, handing the monitor off over a 1-deep channel so
// there is still exactly one driver at a time. Verdicts, reports and stats
// are bit-identical to the sequential dispatcher (modulo the
// PipelineRounds/PipelineStalls/PipelineWaitNs counters); the final drain
// joins every round before Close returns, so CheckpointMonitor still
// observes a committed round boundary. Incompatible with WithFullRecheck
// (no incremental monitor to hand off); full-recheck wins if both are
// given. Thin wrapper over check.Config (WithDecoupledConfig).
func WithDecoupledPipeline(enabled bool) DecoupledOption {
	return func(c *decoupledCfg) { c.monitor.Pipeline = enabled }
}

// NewDecoupled builds D_{O,A} with the given number of verifier goroutines.
// onReport is called from the verification pipeline when a violation is
// found; reports are deduplicated (one per violation — violations are sticky
// by prefix-closure), except under WithFullRecheck, which reports in every
// iteration as the paper's Figure 12 does. Close must be called to stop the
// verifiers.
func NewDecoupled(inner Implementation, n, verifiers int, obj genlin.Object, onReport func(Report), opts ...DecoupledOption) *Decoupled {
	var cfg decoupledCfg
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.full {
		cfg.monitor.Retain = false
		cfg.monitor.Retention = check.RetentionPolicy{}
		cfg.monitor.Pipeline = false
	}
	d := &Decoupled{
		n:        n,
		drv:      NewDRV(inner, n, cfg.drvOpts...),
		obj:      obj,
		m:        snapshot.NewAfek[*conslist.Node[Tuple]](n),
		res:      make([]*conslist.Node[Tuple], n),
		onReport: onReport,
		stop:     make(chan struct{}),
		full:     cfg.full,
		monitor:  cfg.monitor,
		retain:   cfg.monitor.Retain,
	}
	if verifiers <= 0 {
		return d
	}
	if d.full {
		for j := 0; j < verifiers; j++ {
			d.wg.Add(1)
			go d.fullVerifyLoop(j)
		}
		return d
	}
	if d.retain {
		d.epochs = make([]*conslist.Epoch, n)
		for p := 0; p < n; p++ {
			d.epochs[p] = conslist.NewEpoch(epochShards)
		}
	}
	scanners := verifiers - 1
	if scanners > n {
		scanners = n
	}
	d.batches = make(chan tupleBatch, 4*(scanners+1))
	for j := 0; j < scanners; j++ {
		var owned []int
		for p := j; p < n; p += scanners {
			owned = append(owned, p)
		}
		d.wg.Add(1)
		d.scanWg.Add(1)
		go d.scanLoop(owned)
	}
	d.wg.Add(1)
	go d.dispatch(scanners)
	return d
}

// N returns the number of producer processes.
func (d *Decoupled) N() int { return d.n }

// Name identifies the implementation.
func (d *Decoupled) Name() string { return d.drv.inner.Name() + "+decoupled" }

// Apply is the producer operation of Figure 12 (Lines 01–05): obtain the
// response through A*, publish the 4-tuple, and return immediately.
func (d *Decoupled) Apply(proc int, op spec.Operation) spec.Response {
	y, view := d.drv.Apply(proc, op)
	d.res[proc] = conslist.Push(d.res[proc], Tuple{Proc: proc, Op: op, Res: y, View: view})
	d.m.Update(proc, d.res[proc])
	return y
}

// scanLoop is a sharded scanner: it watches the owned processes' entries of
// the result snapshot, extracts newly published tuples, applies the cheap
// Remark 7.2 self-inclusion necessary condition, and forwards batches to the
// dispatcher. Under retention it publishes its consumption cursor on every
// scan round (not only when it forwarded something — an idle process's
// prefix must still become reclaimable); the dispatcher, as the single
// reclaimer, truncates at the epoch floor. A single reclaimer matters: two
// goroutines truncating one list would race on the next pointers the other
// walks.
func (d *Decoupled) scanLoop(owned []int) {
	defer d.wg.Done()
	defer d.scanWg.Done()
	sent := make([]int, d.n)
	for {
		select {
		case <-d.stop:
			return
		default:
		}
		heads := d.m.Scan(0)
		d.scans.Add(1)
		idle := true
		for _, p := range owned {
			h := heads[p]
			if h.Depth() > sent[p] {
				tuples := h.AscendingSince(sent[p])
				corrupt := ""
				for k, t := range tuples {
					// The i-th tuple of process p stems from p's (i+1)-th
					// announcement, which its own view snapshot must contain.
					if c := t.View.Counts(); len(c) != d.n || c[p] < sent[p]+k+1 {
						corrupt = fmt.Sprintf("tuple %d of process %d lacks self-inclusion", sent[p]+k, p+1)
						break
					}
				}
				select {
				case d.batches <- tupleBatch{proc: p, from: sent[p], tuples: tuples, corrupt: corrupt}:
					sent[p] += len(tuples)
					idle = false
				case <-d.stop:
					return
				}
			}
			if d.epochs != nil {
				d.epochs[p].Advance(scannerShard, sent[p])
			}
		}
		if idle {
			runtime.Gosched()
		}
	}
}

// releaseBatch is the minimum number of consumed nodes worth a truncation
// walk.
func (d *Decoupled) releaseBatch() int {
	if d.monitor.Retention.GCBatch > 0 {
		return d.monitor.Retention.GCBatch
	}
	return 64
}

// dispatch merges scanner batches into the incremental pipeline, decides,
// and reports. With no scanners it polls the snapshot itself (and, under
// retention, reclaims the result lists itself — it is the only consumer).
func (d *Decoupled) dispatch(scanners int) {
	defer d.wg.Done()
	iv := NewIncVerifier(d.n, d.obj, WithVerifierConfig(d.monitor))
	d.statsMu.Lock()
	d.verifier = iv
	d.statsMu.Unlock()
	reported := false
	released := make([]int, d.n)

	publishCursors := func() {
		if d.epochs == nil {
			return
		}
		for p := 0; p < d.n; p++ {
			d.epochs[p].Advance(dispatcherShard, iv.ConsumedOf(p))
		}
	}

	// The dispatcher is the single reclaimer of the result cons-lists: it
	// truncates at the epoch floor — never past a scanner's published cursor
	// — once a releaseBatch worth of nodes is reclaimable. The floor check is
	// cheap (atomic loads); the snapshot scan happens only when a truncation
	// will actually run.
	maybeReclaim := func() {
		if d.epochs == nil {
			return
		}
		need := false
		for p := 0; p < d.n; p++ {
			if d.epochs[p].Floor()-released[p] >= d.releaseBatch() {
				need = true
				break
			}
		}
		if !need {
			return
		}
		heads := d.m.Scan(0)
		d.scans.Add(1)
		for p := 0; p < d.n; p++ {
			if floor := d.epochs[p].Floor(); floor-released[p] >= d.releaseBatch() {
				d.resReleased.Add(int64(heads[p].TruncateBefore(floor)))
				released[p] = floor
			}
		}
	}

	absorb := func(first tupleBatch, ok bool) {
		// Coalesce batches already queued into one ingest pass so the monitor
		// runs once per burst, not once per process — but cap the round at
		// absorbChunk batches. Without the cap, producers that outrun
		// verification keep the channel non-empty forever and one absorb
		// round swallows the whole backlog: verification never interleaves
		// with ingestion, and the retention gauges (cmd/stress -retain) show
		// one giant final drain instead of the steady state. Batches are
		// staged position-aware: a catch-up scan below may already have
		// consumed the positions a queued batch covers.
		var delta []Tuple
		for rounds := 0; ; {
			if ok {
				if first.corrupt != "" {
					iv.MarkCorrupt(first.corrupt)
				}
				delta = append(delta, iv.stageBatch(first.proc, first.from, first.tuples)...)
				rounds++
			}
			if rounds < absorbChunk {
				select {
				case first, ok = <-d.batches:
					continue
				default:
				}
			}
			break
		}
		iv.ingest(delta)
		if iv.Blocked() {
			// Scanner batches from different processes are not a consistent
			// cut: a view can announce an operation whose response tuple is
			// still in another scanner's queue. One linearizable snapshot
			// scan closes the gap (the tuple is provably published).
			iv.IngestHeads(d.m.Scan(0))
			d.scans.Add(1)
		}
		publishCursors()
		maybeReclaim()
	}

	settle := func() {
		if iv.violated() && !reported {
			reported = true
			d.statsMu.Lock()
			d.stats.Reports++
			d.statsMu.Unlock()
			if d.onReport != nil {
				d.onReport(Report{Proc: -1, Witness: iv.Witness()})
			}
		}
		d.statsMu.Lock()
		d.stats.Verify = iv.Stats()
		d.stats.Workers = iv.WorkerStats()
		d.statsMu.Unlock()
	}

	finish := func() {
		if scanners > 0 {
			d.scanWg.Wait()
			// Drain the whole backlog: absorb is chunked, so keep going until
			// the channel is empty (no scanner can refill it now).
			for drained := false; !drained; {
				select {
				case b := <-d.batches:
					absorb(b, true)
				default:
					absorb(tupleBatch{}, false)
					drained = true
				}
			}
		}
		// Final drain: everything published before Close gets verified.
		iv.IngestHeads(d.m.Scan(0))
		d.scans.Add(1)
		if iv.Blocked() {
			// Every published tuple has been drained, so a still-missing
			// response tuple provably does not exist: the announce was not
			// produced by a DRV producer (they publish before their next
			// announce). Report it instead of dropping the evidence.
			iv.MarkCorrupt("announced operation's response tuple was never published")
		}
		// Join the last pipelined round and stop the checker goroutine before
		// the final settle: Close's wait then guarantees the monitor is a
		// settled, committed round boundary (CheckpointMonitor's contract).
		iv.ClosePipeline()
		settle()
	}

	for {
		if scanners == 0 {
			select {
			case <-d.stop:
				finish()
				return
			default:
			}
			heads := d.m.Scan(0)
			changed := iv.IngestHeads(heads)
			d.scans.Add(1)
			if d.epochs != nil {
				for p := 0; p < d.n; p++ {
					c := iv.ConsumedOf(p)
					d.epochs[p].Advance(scannerShard, c)
					d.epochs[p].Advance(dispatcherShard, c)
					if c-released[p] >= d.releaseBatch() {
						d.resReleased.Add(int64(heads[p].TruncateBefore(c)))
						released[p] = c
					}
				}
			}
			settle()
			if !changed {
				runtime.Gosched()
			}
			continue
		}
		select {
		case <-d.stop:
			finish()
			return
		case b := <-d.batches:
			absorb(b, true)
			settle()
		}
	}
}

// fullVerifyLoop is operation Verify() of Figure 12 (Lines 06–12), verbatim:
// flatten the whole sketch, rebuild X(τ) and re-decide membership on every
// iteration, reporting every time a violation is seen.
func (d *Decoupled) fullVerifyLoop(j int) {
	defer d.wg.Done()
	for {
		select {
		case <-d.stop:
			return
		default:
		}
		heads := d.m.Scan(0)
		d.scans.Add(1)
		var tuples []Tuple
		for _, h := range heads {
			tuples = append(tuples, h.Ascending()...)
		}
		x, err := BuildHistory(tuples, d.n)
		if err != nil || !d.obj.Contains(x) {
			d.statsMu.Lock()
			d.stats.Reports++
			d.statsMu.Unlock()
			if d.onReport != nil {
				d.onReport(Report{Proc: -1 - j, Witness: x})
			}
		}
		runtime.Gosched()
	}
}

// Stats returns a snapshot of the verification pipeline's counters.
func (d *Decoupled) Stats() DecoupledStats {
	d.statsMu.Lock()
	st := d.stats
	st.Workers = append([]check.WorkerStat(nil), d.stats.Workers...)
	d.statsMu.Unlock()
	st.Scans = d.scans.Load()
	st.ResultNodesReleased = d.resReleased.Load()
	return st
}

// Close stops the verifier goroutines and waits for them to exit. The
// incremental pipeline performs a final drain first, so every tuple
// published before the call is verified (and reported, if violating) before
// Close returns.
func (d *Decoupled) Close() {
	close(d.stop)
	d.wg.Wait()
}
