package core

import (
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/check"
	"repro/internal/genlin"
	"repro/internal/impls"
	"repro/internal/spec"
	"repro/internal/trace"
)

// resumeRoundTrip pushes iv's monitor through the full durable path —
// Checkpoint, JSON, RestoreIncremental, ResumeIncVerifier — and returns the
// re-anchored pipeline.
func resumeRoundTrip(t *testing.T, n int, obj genlin.Object, iv *IncVerifier) *IncVerifier {
	t.Helper()
	img, err := iv.inc.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	raw, err := json.Marshal(img)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var dec check.MonitorImage
	if err := json.Unmarshal(raw, &dec); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	inc, err := check.RestoreIncremental(&dec)
	if err != nil {
		t.Fatalf("RestoreIncremental: %v", err)
	}
	resumed, err := ResumeIncVerifier(n, obj, inc)
	if err != nil {
		t.Fatalf("ResumeIncVerifier: %v", err)
	}
	return resumed
}

// TestResumeIncVerifierContinuation: a pipeline resumed mid-stream from a
// serialised checkpoint tracks the uninterrupted reference verdict-for-
// verdict on the continuation, on clean and on faulty implementations, with
// and without retention.
func TestResumeIncVerifierContinuation(t *testing.T) {
	const n, ops = 3, 90
	obj := genlin.Linearizability(spec.Counter())
	for seed := int64(1); seed <= 6; seed++ {
		for _, retain := range []bool{false, true} {
			var inner Implementation = impls.NewAtomicCounter()
			if seed%2 == 0 {
				inner = impls.NewFaulty(impls.NewAtomicCounter(), impls.StaleRead, 6, uint64(seed))
			}
			h := newIncHarness(inner, n)
			var opts []IncVerifierOption
			if retain {
				opts = append(opts, WithVerifierRetention(check.RetentionPolicy{GCBatch: 8}))
			}
			ref := NewIncVerifier(n, obj, opts...)
			var resumed *IncVerifier
			var uniq trace.UniqSource
			gen := trace.NewOpGen("counter", seed, &uniq)

			for i := 0; i < ops; i++ {
				if i == ops/2 {
					resumed = resumeRoundTrip(t, n, obj, ref)
				}
				h.publish(h.apply(i%n, gen.Next()))
				heads := h.m.Scan(0)
				ref.IngestHeads(heads)
				if resumed != nil {
					resumed.IngestHeads(heads)
					if resumed.Verdict() != ref.Verdict() {
						t.Fatalf("seed=%d retain=%v op=%d: resumed=%v reference=%v\nwitness:\n%s",
							seed, retain, i, resumed.Verdict(), ref.Verdict(), resumed.Witness().String())
					}
				}
			}
			if (resumed.Err() != nil) != (ref.Err() != nil) {
				t.Fatalf("seed=%d retain=%v: resumed err %v, reference %v", seed, retain, resumed.Err(), ref.Err())
			}
			// The resumed pipeline verified the whole continuation, not a
			// trivial prefix.
			if ref.Verdict() == check.Yes && resumed.Stats().Tuples == 0 {
				t.Fatalf("seed=%d retain=%v: resumed pipeline ingested nothing", seed, retain)
			}
		}
	}
}

// TestResumeIncVerifierDetectsPostResumeViolation: a corruption published
// after the resume point is caught by the resumed pipeline — recovery does
// not blunt detection.
func TestResumeIncVerifierDetectsPostResumeViolation(t *testing.T) {
	const n = 2
	obj := genlin.Linearizability(spec.Counter())
	h := newIncHarness(impls.NewAtomicCounter(), n)
	ref := NewIncVerifier(n, obj, WithVerifierRetention(check.RetentionPolicy{GCBatch: 4}))
	var uniq trace.UniqSource
	gen := trace.NewOpGen("counter", 5, &uniq)
	for i := 0; i < 20; i++ {
		h.publish(h.apply(i%n, gen.Next()))
		ref.IngestHeads(h.m.Scan(0))
	}
	if ref.Verdict() != check.Yes {
		t.Fatalf("clean prefix refuted: %v", ref.Err())
	}
	resumed := resumeRoundTrip(t, n, obj, ref)

	bad := h.apply(0, spec.Operation{Method: spec.MethodRead, Uniq: uniq.Next()})
	bad.Res = spec.ValueResp(-999) // a count the object can never return
	h.publish(bad)
	resumed.IngestHeads(h.m.Scan(0))
	if resumed.Verdict() != check.No {
		t.Fatal("resumed pipeline accepted a corrupt continuation")
	}
}

// TestResumeIncVerifierRejects: the guard rails — nil monitor, model
// mismatch, generic objects — fail loudly instead of resuming wrong.
func TestResumeIncVerifierRejects(t *testing.T) {
	if _, err := ResumeIncVerifier(2, genlin.Linearizability(spec.Counter()), nil); err == nil {
		t.Fatal("nil monitor accepted")
	}
	inc := check.NewIncremental(spec.Queue())
	if _, err := ResumeIncVerifier(2, genlin.Linearizability(spec.Counter()), inc); err == nil {
		t.Fatal("model mismatch accepted")
	}
	if _, err := ResumeIncVerifier(2, genlin.ConsensusTask(), check.NewIncremental(spec.Consensus())); err == nil {
		t.Fatal("generic-object resume accepted")
	}
}

// TestDecoupledCheckpointMonitor: the export half — after Close, the
// dispatcher's monitor is checkpointable, the image restores, and a pipeline
// resumed from it picks up with the settled verdict. Under WithFullRecheck
// there is nothing to export and the call says so.
func TestDecoupledCheckpointMonitor(t *testing.T) {
	const procs, perProc = 3, 40
	obj := genlin.Linearizability(spec.Counter())
	d := NewDecoupled(impls.NewAtomicCounter(), procs, 3, obj, nil,
		WithDecoupledRetention(check.RetentionPolicy{GCBatch: 8}))
	var uniq trace.UniqSource
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			gen := trace.NewOpGen("counter", int64(p), &uniq)
			for i := 0; i < perProc; i++ {
				d.Apply(p, gen.Next())
			}
		}(p)
	}
	wg.Wait()
	d.Close()

	img, err := d.CheckpointMonitor()
	if err != nil {
		t.Fatalf("CheckpointMonitor: %v", err)
	}
	inc, err := check.RestoreIncremental(img)
	if err != nil {
		t.Fatalf("RestoreIncremental: %v", err)
	}
	if inc.Verdict() != check.Yes {
		t.Fatalf("restored verdict %v, want Yes", inc.Verdict())
	}
	if _, err := ResumeIncVerifier(procs, obj, inc); err != nil {
		t.Fatalf("ResumeIncVerifier on exported image: %v", err)
	}

	full := NewDecoupled(impls.NewAtomicCounter(), 1, 2, obj, nil, WithFullRecheck())
	full.Close()
	if _, err := full.CheckpointMonitor(); err == nil {
		t.Fatal("full-recheck pipeline exported a monitor image")
	}
}
