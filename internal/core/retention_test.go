package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/check"
	"repro/internal/genlin"
	"repro/internal/impls"
	"repro/internal/spec"
	"repro/internal/trace"
)

// tightRetention GCs as aggressively as possible so short tests exercise the
// collector.
var tightRetention = check.RetentionPolicy{GCBatch: 1}

// driveOne drives one pipeline through the scripted schedule and returns the
// per-publication verdicts. Each pipeline gets its own harness: the schedule
// is deterministic, so two harnesses produce identical histories, while the
// retained pipeline stays free to truncate the announce lists it owns
// without sabotaging the other pipeline's rebuilds.
func driveOne(seed int64, faulty bool, iv *IncVerifier) []check.Verdict {
	const n, ops = 3, 60
	var inner Implementation = impls.NewAtomicCounter()
	if faulty {
		inner = impls.NewFaulty(impls.NewAtomicCounter(), impls.StaleRead, 4, uint64(seed))
	}
	h := newIncHarness(inner, n)
	rng := rand.New(rand.NewSource(seed))
	var uniq trace.UniqSource
	gen := trace.NewOpGen("counter", seed, &uniq)

	var verdicts []check.Verdict
	held := make([][]Tuple, n)
	busy := make([]bool, n)
	published := 0
	for done := 0; done < ops || published < done; {
		p := rng.Intn(n)
		if !busy[p] && done < ops && rng.Intn(3) > 0 {
			held[p] = append(held[p], h.apply(p, gen.Next()))
			busy[p] = true
			done++
			continue
		}
		q := -1
		for off := 0; off < n; off++ {
			c := (p + off) % n
			if len(held[c]) > 0 {
				q = c
				break
			}
		}
		if q < 0 {
			continue
		}
		h.publish(held[q][0])
		held[q] = held[q][1:]
		busy[q] = len(held[q]) > 0
		published++
		iv.IngestHeads(h.m.Scan(0))
		verdicts = append(verdicts, iv.Verdict())
	}
	return verdicts
}

// TestRetainedVerifierEquivalence: under out-of-order publication (slow
// producers whose views predate already-ingested groups) interleaved with GC
// cycles, the retained pipeline's verdict equals the unbounded pipeline's
// after every publication, on correct and on faulty implementations.
func TestRetainedVerifierEquivalence(t *testing.T) {
	obj := genlin.Linearizability(spec.Counter())
	for seed := int64(1); seed <= 8; seed++ {
		faulty := seed%2 == 0
		retained := NewIncVerifier(3, obj, WithVerifierRetention(tightRetention))
		unbounded := NewIncVerifier(3, obj)
		got := driveOne(seed, faulty, retained)
		want := driveOne(seed, faulty, unbounded)
		if len(got) != len(want) {
			t.Fatalf("seed=%d: schedules diverged: %d vs %d publications", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed=%d pub=%d: retained=%v unbounded=%v", seed, i, got[i], want[i])
			}
		}
		if !faulty {
			st := retained.Stats()
			if st.Check.GCRuns == 0 || st.DiscardedTuples == 0 {
				t.Fatalf("seed=%d: retention idle on a clean stream: %+v", seed, st)
			}
			if st.RetainedTuples >= st.Tuples {
				t.Fatalf("seed=%d: nothing released: retained %d of %d", seed, st.RetainedTuples, st.Tuples)
			}
		}
	}
}

// TestRetainedVerifierWindowRebuild forces the out-of-order path after the
// pipeline has garbage-collected a prefix: the reconstruction must cover only
// the retained window, re-anchored at the monitor's GC base.
func TestRetainedVerifierWindowRebuild(t *testing.T) {
	const n = 2
	h := newIncHarness(impls.NewAtomicCounter(), n)
	obj := genlin.Linearizability(spec.Counter())
	iv := NewIncVerifier(n, obj, WithVerifierRetention(tightRetention))
	var uniq trace.UniqSource
	inc := func(p int) Tuple {
		return h.apply(p, spec.Operation{Method: spec.MethodInc, Uniq: uniq.Next()})
	}

	// Quiescent traffic: committed and collected.
	for i := 0; i < 30; i++ {
		h.publish(inc(i % n))
		iv.IngestHeads(h.m.Scan(0))
		if iv.Verdict() != check.Yes {
			t.Fatalf("clean prefix refuted at %d", i)
		}
	}
	if iv.Stats().Check.GCRuns == 0 || iv.Stats().DiscardedTuples == 0 {
		t.Fatalf("precondition: no GC before the late publication: %+v", iv.Stats())
	}

	// A slow producer takes its view now and publishes after faster
	// processes' larger views were ingested.
	slow := inc(0)
	for i := 0; i < 5; i++ {
		h.publish(inc(1))
		iv.IngestHeads(h.m.Scan(0))
		if iv.Verdict() != check.Yes {
			t.Fatalf("prefix with pending slow op refuted at %d", i)
		}
	}
	before := iv.Stats()
	if before.Rebuilds != 0 {
		t.Fatalf("premature rebuild: %+v", before)
	}
	h.publish(slow)
	iv.IngestHeads(h.m.Scan(0))
	if iv.Verdict() != check.Yes {
		t.Fatalf("late publication refuted:\n%s", iv.Witness().String())
	}
	st := iv.Stats()
	if st.Rebuilds != 1 {
		t.Fatalf("late small view must trigger exactly one rebuild, stats %+v", st)
	}
	if got := len(iv.Witness()); got >= 2*70 {
		t.Fatalf("rebuild was not windowed: %d events reassembled", got)
	}
	// The pipeline keeps working — and collecting — after the rebuild.
	for i := 0; i < 20; i++ {
		h.publish(inc(i % n))
		iv.IngestHeads(h.m.Scan(0))
		if iv.Verdict() != check.Yes {
			t.Fatalf("post-rebuild append %d refuted", i)
		}
	}
	if after := iv.Stats(); after.Check.GCRuns <= st.Check.GCRuns {
		t.Fatalf("GC stalled after the window rebuild: %+v", after)
	}
}

// TestRetainedVerifierStaleHorizon: a publication whose view predates the GC
// horizon cannot come from a correct DRV producer (its pending invocation
// would have blocked every quiescent cut); retention reports it as a views
// violation instead of silently accepting it.
func TestRetainedVerifierStaleHorizon(t *testing.T) {
	const n = 2
	h := newIncHarness(impls.NewAtomicCounter(), n)
	obj := genlin.Linearizability(spec.Counter())
	iv := NewIncVerifier(n, obj, WithVerifierRetention(tightRetention))
	var uniq trace.UniqSource
	inc := func(p int) Tuple {
		return h.apply(p, spec.Operation{Method: spec.MethodInc, Uniq: uniq.Next()})
	}
	early := inc(0) // its view predates everything that follows
	h.publish(early)
	iv.IngestHeads(h.m.Scan(0))
	for i := 0; i < 20; i++ {
		h.publish(inc(1))
		iv.IngestHeads(h.m.Scan(0))
	}
	if iv.Stats().Check.GCRuns == 0 {
		t.Fatalf("precondition: no GC: %+v", iv.Stats())
	}
	// A corrupted producer republishes an operation with the long-collected
	// early view. Its per-process position is fresh, its evidence is not.
	forged := Tuple{Proc: 0, Op: spec.Operation{Method: spec.MethodInc, Uniq: uniq.Next()}, Res: spec.OKResp(), View: early.View}
	iv.IngestTuples([]Tuple{forged})
	if iv.Verdict() != check.No {
		t.Fatal("publication behind the retention horizon accepted")
	}
	if _, ok := iv.Err().(*ViewsError); !ok {
		t.Fatalf("want ViewsError, got %v", iv.Err())
	}
}

// TestDecoupledRetainedRace: the full decoupled pipeline with retention —
// scanners releasing result-list prefixes through epochs, the dispatcher
// GC-ing the monitor — stays clean on a correct implementation under real
// concurrency. Run with -race: this is what exercises the truncate-while-scan
// protocol.
func TestDecoupledRetainedRace(t *testing.T) {
	const procs, perProc, verifiers = 4, 100, 3
	var mu sync.Mutex
	var got []Report
	d := NewDecoupled(impls.NewAtomicCounter(), procs, verifiers,
		genlin.Linearizability(spec.Counter()), func(r Report) {
			mu.Lock()
			got = append(got, r)
			mu.Unlock()
		}, WithDecoupledRetention(tightRetention))
	var uniq trace.UniqSource
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			gen := trace.NewOpGen("counter", int64(p), &uniq)
			for i := 0; i < perProc; i++ {
				d.Apply(p, gen.Next())
			}
		}(p)
	}
	wg.Wait()
	d.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 0 {
		t.Fatalf("reports on a correct run: %d, first witness:\n%s", len(got), got[0].Witness.String())
	}
	st := d.Stats()
	if st.Verify.Tuples != procs*perProc {
		t.Fatalf("final drain incomplete: verified %d of %d tuples (stats %+v)",
			st.Verify.Tuples, procs*perProc, st)
	}
}

// TestDecoupledRetainedDetects: retention must not lose violations — the
// injected fault is still reported exactly once.
func TestDecoupledRetainedDetects(t *testing.T) {
	const procs, perProc = 2, 200
	var mu sync.Mutex
	reports := 0
	d := NewDecoupled(impls.NewFaulty(impls.NewAtomicCounter(), impls.StaleRead, 2, 11),
		procs, 3, genlin.Linearizability(spec.Counter()), func(r Report) {
			mu.Lock()
			reports++
			mu.Unlock()
		}, WithDecoupledRetention(tightRetention))
	var uniq trace.UniqSource
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			gen := trace.NewOpGen("counter", int64(p), &uniq)
			for i := 0; i < perProc; i++ {
				d.Apply(p, gen.Next())
			}
		}(p)
	}
	wg.Wait()
	d.Close()
	mu.Lock()
	defer mu.Unlock()
	if reports != 1 {
		t.Fatalf("want exactly one report under retention, got %d", reports)
	}
}

// TestRetainedVerifierBurst drives the retained pipeline with coalesced
// bursts — the decoupled dispatcher's giant-batch pattern, where one Append
// spans many interior quiescent cuts and GC runs mid-batch — against the
// unbounded oracle. (This is the schedule that caught the boundary-queue
// corruption when the collector rewrote it mid-iteration.)
func TestRetainedVerifierBurst(t *testing.T) {
	obj := genlin.Linearizability(spec.Counter())
	for seed := int64(1); seed <= 20; seed++ {
		const n, ops = 4, 400
		mk := func() (*incHarness, *rand.Rand, *trace.OpGen) {
			var uniq trace.UniqSource
			h := newIncHarness(impls.NewAtomicCounter(), n)
			return h, rand.New(rand.NewSource(seed)), trace.NewOpGen("counter", seed, &uniq)
		}
		drive := func(iv *IncVerifier) []check.Verdict {
			h, rng, gen := mk()
			var verdicts []check.Verdict
			held := make([][]Tuple, n)
			busy := make([]bool, n)
			published := 0
			sincePass := 0
			for done := 0; done < ops || published < done; {
				p := rng.Intn(n)
				if !busy[p] && done < ops && rng.Intn(3) > 0 {
					held[p] = append(held[p], h.apply(p, gen.Next()))
					busy[p] = true
					done++
					continue
				}
				q := -1
				for off := 0; off < n; off++ {
					c := (p + off) % n
					if len(held[c]) > 0 {
						q = c
						break
					}
				}
				if q < 0 {
					continue
				}
				h.publish(held[q][0])
				held[q] = held[q][1:]
				busy[q] = len(held[q]) > 0
				published++
				sincePass++
				// Coalesce: ingest only every 40 publications (and at the end).
				if sincePass >= 40 || (done >= ops && published == done) {
					sincePass = 0
					iv.IngestHeads(h.m.Scan(0))
					verdicts = append(verdicts, iv.Verdict())
				}
			}
			return verdicts
		}
		got := drive(NewIncVerifier(n, obj, WithVerifierRetention(check.RetentionPolicy{})))
		want := drive(NewIncVerifier(n, obj))
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed=%d pass=%d: retained=%v unbounded=%v", seed, i, got[i], want[i])
			}
		}
	}
}

// TestIncVerifierDeferredGap pins the tuple-lag path deterministically: a
// view that announces a process's later operations arrives before that
// process's response tuples (as happens when scanner batches from different
// processes interleave). The pipeline must defer — not report — and resolve
// once the missing tuples arrive.
func TestIncVerifierDeferredGap(t *testing.T) {
	const n = 2
	h := newIncHarness(impls.NewAtomicCounter(), n)
	obj := genlin.Linearizability(spec.Counter())
	var uniq trace.UniqSource
	op := func() spec.Operation { return spec.Operation{Method: spec.MethodInc, Uniq: uniq.Next()} }
	t1 := h.apply(0, op())
	t2 := h.apply(0, op())
	t3 := h.apply(1, op()) // view contains both announces of process 0

	for _, retain := range []bool{false, true} {
		var opts []IncVerifierOption
		if retain {
			opts = append(opts, WithVerifierRetention(tightRetention))
		}
		iv := NewIncVerifier(n, obj, opts...)
		iv.IngestTuples([]Tuple{t3})
		if iv.Verdict() != check.Yes || iv.Err() != nil {
			t.Fatalf("retain=%v: gapped batch reported as violation: %v %v", retain, iv.Verdict(), iv.Err())
		}
		if !iv.Blocked() || iv.Stats().Deferrals != 1 {
			t.Fatalf("retain=%v: gap not deferred: blocked=%v stats=%+v", retain, iv.Blocked(), iv.Stats())
		}
		iv.IngestTuples([]Tuple{t1, t2})
		if iv.Verdict() != check.Yes || iv.Blocked() {
			t.Fatalf("retain=%v: gap did not resolve: %v blocked=%v", retain, iv.Verdict(), iv.Blocked())
		}
		if got := iv.Stats().Tuples; got != 3 {
			t.Fatalf("retain=%v: %d tuples ingested, want 3", retain, got)
		}
		if !retain {
			if got := len(iv.Witness().Ops()); got != 3 {
				t.Fatalf("%d ops assembled, want 3", got)
			}
		}
	}
}

// TestRetainedVerifierFrozenAfterViolation: once the verdict is No the
// pipeline stops retaining — a refuted stream must not grow memory (the
// bound RetentionPolicy promises).
func TestRetainedVerifierFrozenAfterViolation(t *testing.T) {
	const n = 2
	h := newIncHarness(impls.NewAtomicCounter(), n)
	obj := genlin.Linearizability(spec.Counter())
	iv := NewIncVerifier(n, obj, WithVerifierRetention(tightRetention))
	var uniq trace.UniqSource
	inc := func(p int) Tuple {
		return h.apply(p, spec.Operation{Method: spec.MethodInc, Uniq: uniq.Next()})
	}
	for i := 0; i < 10; i++ {
		h.publish(inc(i % n))
		iv.IngestHeads(h.m.Scan(0))
	}
	iv.MarkCorrupt("injected")
	if iv.Verdict() != check.No {
		t.Fatal("precondition: not violated")
	}
	tuples, events := len(iv.all), len(iv.inc.History())
	for i := 0; i < 50; i++ {
		h.publish(inc(i % n))
		iv.IngestHeads(h.m.Scan(0))
	}
	if len(iv.all) != tuples || len(iv.inc.History()) != events {
		t.Fatalf("buffers grew after the verdict froze: tuples %d->%d events %d->%d",
			tuples, len(iv.all), events, len(iv.inc.History()))
	}
}

// driveModel is driveOne generalised over the monitored model, for the
// commit-point-cut threading test below: out-of-order publication (held
// tuples) against a DRV over the model's reference implementation.
func driveModel(m spec.Model, seed int64, iv *IncVerifier) []check.Verdict {
	const n, ops = 3, 80
	h := newIncHarness(impls.ForModel(m), n)
	rng := rand.New(rand.NewSource(seed))
	var uniq trace.UniqSource
	gen := trace.NewOpGen(m.Name(), seed, &uniq)

	var verdicts []check.Verdict
	held := make([][]Tuple, n)
	busy := make([]bool, n)
	published := 0
	for done := 0; done < ops || published < done; {
		p := rng.Intn(n)
		if !busy[p] && done < ops && rng.Intn(3) > 0 {
			held[p] = append(held[p], h.apply(p, gen.Next()))
			busy[p] = true
			done++
			continue
		}
		q := -1
		for off := 0; off < n; off++ {
			c := (p + off) % n
			if len(held[c]) > 0 {
				q = c
				break
			}
		}
		if q < 0 {
			continue
		}
		h.publish(held[q][0])
		held[q] = held[q][1:]
		busy[q] = len(held[q]) > 0
		published++
		iv.IngestHeads(h.m.Scan(0))
		verdicts = append(verdicts, iv.Verdict())
	}
	return verdicts
}

// TestRetainedVerifierCommitCuts: RetentionPolicy.CommitCuts threads through
// WithVerifierRetention — the assembler's response-aligned GC sync and the
// windowed rebuild stay exact when the monitor restages carried invocations
// — and the pipeline's verdicts still equal the unbounded pipeline's after
// every publication, on strongly-ordered and on incapable models alike.
func TestRetainedVerifierCommitCuts(t *testing.T) {
	pol := check.RetentionPolicy{GCBatch: 1, CommitCuts: true}
	for _, m := range []spec.Model{spec.Queue(), spec.Stack(), spec.PQueue(), spec.Counter()} {
		obj := genlin.Linearizability(m)
		for seed := int64(1); seed <= 6; seed++ {
			retained := NewIncVerifier(3, obj, WithVerifierRetention(pol))
			unbounded := NewIncVerifier(3, obj)
			got := driveModel(m, seed, retained)
			want := driveModel(m, seed, unbounded)
			if len(got) != len(want) {
				t.Fatalf("%s seed=%d: %d vs %d publications", m.Name(), seed, len(got), len(want))
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("%s seed=%d: verdicts diverged at publication %d: %v vs %v",
						m.Name(), seed, k, got[k], want[k])
				}
			}
			if d := retained.Stats().DiscardedTuples; d == 0 {
				t.Fatalf("%s seed=%d: retention never released a tuple", m.Name(), seed)
			}
		}
	}
}
