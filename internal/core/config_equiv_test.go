package core

import (
	"testing"

	"repro/internal/check"
	"repro/internal/genlin"
	"repro/internal/impls"
	"repro/internal/spec"
)

// TestVerifierConfigEquivalence: an IncVerifier built from one
// check.Config behaves bit-identically (verdicts and merged stats at every
// publication) to one built from the equivalent per-knob options — the
// core-level face of the Config consolidation.
func TestVerifierConfigEquivalence(t *testing.T) {
	obj := genlin.Linearizability(spec.Counter())
	cases := []struct {
		name string
		opts []IncVerifierOption
		cfg  check.Config
	}{
		{"retention", []IncVerifierOption{WithVerifierRetention(tightRetention)},
			check.Config{Retain: true, Retention: tightRetention}},
		{"retention+parallel", []IncVerifierOption{WithVerifierRetention(tightRetention), WithVerifierParallelism(2)},
			check.Config{Retain: true, Retention: tightRetention, Parallelism: 2}},
		{"retention+no-fasttier", []IncVerifierOption{WithVerifierRetention(tightRetention), WithVerifierFastTier(false)},
			check.Config{Retain: true, Retention: tightRetention, NoFastTier: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				faulty := seed%2 == 0
				fromOpts := NewIncVerifier(3, obj, tc.opts...)
				fromCfg := NewIncVerifier(3, obj, WithVerifierConfig(tc.cfg))
				got := driveOne(seed, faulty, fromCfg)
				want := driveOne(seed, faulty, fromOpts)
				if len(got) != len(want) {
					t.Fatalf("seed=%d: schedules diverged: %d vs %d publications", seed, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("seed=%d pub=%d: config=%v options=%v", seed, i, got[i], want[i])
					}
				}
				if fromCfg.Stats() != fromOpts.Stats() {
					t.Fatalf("seed=%d: stats diverge\nconfig:  %+v\noptions: %+v",
						seed, fromCfg.Stats(), fromOpts.Stats())
				}
			}
		})
	}
}

// TestDecoupledConfigResolution: the per-knob WithDecoupled* options and
// WithDecoupledConfig resolve to the same monitor Config inside the pipeline
// (verifiers=0 builds the structure without starting goroutines), and
// full-recheck drops retention as documented.
func TestDecoupledConfigResolution(t *testing.T) {
	obj := genlin.Linearizability(spec.Counter())
	build := func(opts ...DecoupledOption) *Decoupled {
		d := NewDecoupled(impls.NewAtomicCounter(), 2, 0, obj, nil, opts...)
		t.Cleanup(d.Close)
		return d
	}
	cfg := check.Config{Retain: true, Retention: check.RetentionPolicy{GCBatch: 2}, Parallelism: 2, NoFastTier: true}
	fromCfg := build(WithDecoupledConfig(cfg))
	fromOpts := build(
		WithDecoupledRetention(check.RetentionPolicy{GCBatch: 2}),
		WithDecoupledParallelism(2),
		WithDecoupledFastTier(false))
	if fromCfg.monitor != fromOpts.monitor {
		t.Fatalf("resolved configs diverge\nconfig:  %+v\noptions: %+v", fromCfg.monitor, fromOpts.monitor)
	}
	if fromCfg.monitor != cfg {
		t.Fatalf("WithDecoupledConfig mangled the config: %+v", fromCfg.monitor)
	}
	// WithDecoupledConfig replaces everything accumulated before it.
	replaced := build(WithDecoupledParallelism(8), WithDecoupledConfig(check.Config{Retain: true}))
	if replaced.monitor != (check.Config{Retain: true}) {
		t.Fatalf("WithDecoupledConfig did not replace prior options: %+v", replaced.monitor)
	}
	// Full-recheck has no incremental monitor; retention is dropped.
	full := build(WithFullRecheck(), WithDecoupledConfig(cfg))
	if full.monitor.Retain || full.monitor.Retention != (check.RetentionPolicy{}) {
		t.Fatalf("full-recheck kept retention: %+v", full.monitor)
	}
}
