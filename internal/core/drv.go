package core

import (
	"sync"

	"repro/internal/conslist"
	"repro/internal/history"
	"repro/internal/snapshot"
	"repro/internal/spec"
)

// DRV wraps an arbitrary implementation A into its counterpart A* in the
// class DRV, exactly as Figure 7: every Apply announces its invocation pair
// in a shared snapshot object, calls A, snapshots all announcements and
// returns A's response together with the view.
//
// Lemma 7.2: A* implements the same object as A, preserves A's progress
// condition (the added code is wait-free) and adds O(1) snapshot operations
// per Apply.
type DRV struct {
	inner Implementation
	n     int
	ann   snapshot.Snapshot[*conslist.Node[Ann]]
	// heads[p] is process p's own announce list; only process p reads and
	// writes it (single-writer, like its snapshot entry).
	heads []*conslist.Node[Ann]

	// Tight-execution recording (Definition 7.5): when enabled, the announce
	// Write and Snapshot steps are made atomic with the recording of an
	// invocation/response event, so the recorded history is exactly the
	// history of the associated tight execution T(E).
	tightMu *sync.Mutex
	tight   history.History
}

// Option configures a DRV.
type Option func(*DRV)

// WithSnapshot replaces the default Afek announce snapshot. The snapshot must
// have at least n entries.
func WithSnapshot(s snapshot.Snapshot[*conslist.Node[Ann]]) Option {
	return func(d *DRV) { d.ann = s }
}

// WithTightRecording records the history of the tight execution associated
// with the current execution (Definition 7.5): invocations at announce-Write
// steps, responses at Snapshot steps. Recording serialises the two steps with
// the event log, so it is meant for experiments and tests, not production.
func WithTightRecording() Option {
	return func(d *DRV) { d.tightMu = &sync.Mutex{} }
}

// NewDRV builds A* from A for n processes (Figure 7).
func NewDRV(inner Implementation, n int, opts ...Option) *DRV {
	d := &DRV{
		inner: inner,
		n:     n,
		heads: make([]*conslist.Node[Ann], n),
	}
	for _, opt := range opts {
		opt(d)
	}
	if d.ann == nil {
		d.ann = snapshot.NewAfek[*conslist.Node[Ann]](n)
	}
	return d
}

// N returns the number of processes.
func (d *DRV) N() int { return d.n }

// Name identifies the wrapped implementation.
func (d *DRV) Name() string { return d.inner.Name() + "*" }

// Apply is operation Apply(op_i) of Figure 7. It returns A's response y_i and
// the view λ_i. op.Uniq must be unique across the DRV's lifetime (§2 assumes
// every operation input is used once).
func (d *DRV) Apply(proc int, op spec.Operation) (spec.Response, View) {
	// Lines 01–02: set_i ← set_i ∪ {(p_i, op_i)}; N.Write(set_i).
	newHead := conslist.Push(d.heads[proc], Ann{Proc: proc, Op: op})
	d.heads[proc] = newHead
	if d.tightMu != nil {
		d.tightMu.Lock()
		d.ann.Update(proc, newHead)
		d.tight = append(d.tight, history.Event{Kind: history.Invoke, Proc: proc, ID: op.Uniq, Op: op})
		d.tightMu.Unlock()
	} else {
		d.ann.Update(proc, newHead)
	}

	// Lines 03–04: invoke Apply(op_i) of A and obtain y_i.
	y := d.inner.Apply(proc, op)

	// Lines 05–06: s_i ← N.Snapshot(); λ_i ← union of all entries.
	var heads []*conslist.Node[Ann]
	if d.tightMu != nil {
		d.tightMu.Lock()
		heads = d.ann.Scan(proc)
		d.tight = append(d.tight, history.Event{Kind: history.Return, Proc: proc, ID: op.Uniq, Op: op, Res: y})
		d.tightMu.Unlock()
	} else {
		heads = d.ann.Scan(proc)
	}

	// Line 07: return (y_i, λ_i).
	return y, NewView(heads)
}

// TightHistory returns the recorded history of the tight execution T(E)
// associated with the execution so far. It is empty unless the DRV was built
// with WithTightRecording.
func (d *DRV) TightHistory() history.History {
	if d.tightMu == nil {
		return nil
	}
	d.tightMu.Lock()
	defer d.tightMu.Unlock()
	out := make(history.History, len(d.tight))
	copy(out, d.tight)
	return out
}
