package core

import (
	"repro/internal/genlin"
	"repro/internal/history"
	"repro/internal/spec"
)

// Enforced is the self-enforced GenLin implementation V_{O,A} of Figure 11:
// a drop-in replacement for A whose every non-ERROR response has been runtime
// verified. Theorem 8.2: it has A's progress condition; if A is correct it
// behaves exactly like A; if A is not correct, every execution is correct up
// to a prefix after which every new operation returns ERROR with a witness.
type Enforced struct {
	v *Verifier
}

// NewEnforced builds V_{O,A} from an arbitrary implementation A for n
// processes (Figure 11): A is wrapped into A* (Figure 7) and combined with
// the predictive verifier (Figure 10).
func NewEnforced(inner Implementation, n int, obj genlin.Object, drvOpts []Option, vOpts ...VerifierOption) *Enforced {
	drv := NewDRV(inner, n, drvOpts...)
	return &Enforced{v: NewVerifier(drv, obj, vOpts...)}
}

// NewEnforcedOver builds V_{O,A} over an existing verifier, sharing its A*
// and snapshots.
func NewEnforcedOver(v *Verifier) *Enforced { return &Enforced{v: v} }

// N returns the number of processes.
func (e *Enforced) N() int { return e.v.N() }

// Name identifies the implementation.
func (e *Enforced) Name() string { return e.v.drv.inner.Name() + "+self-enforced" }

// Apply is operation Apply(op_i) of Figure 11. On success the report is nil
// and the response is A's (runtime verified). On failure the response is the
// zero Response and the report carries (ERROR, X(τ_i)), a certified witness
// that A* is not correct with respect to O.
func (e *Enforced) Apply(proc int, op spec.Operation) (spec.Response, *Report) {
	y, _, rep := e.v.Do(proc, op)
	if rep != nil {
		return spec.Response{}, rep
	}
	return y, nil
}

// Certify returns a history similar to the implementation's current history
// (Theorem 8.2(3)), usable as an accountability certificate (§8.3).
func (e *Enforced) Certify(proc int) (history.History, error) {
	return e.v.Certify(proc)
}

// Verifier exposes the underlying verifier, for experiments that inspect the
// machinery.
func (e *Enforced) Verifier() *Verifier { return e.v }
