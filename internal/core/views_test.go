package core

import (
	"testing"

	"repro/internal/conslist"
	"repro/internal/history"
	"repro/internal/spec"
)

// mkOp builds an operation with an explicit unique id.
func mkOp(method string, arg int64, uniq uint64) spec.Operation {
	return spec.Operation{Method: method, Arg: arg, Uniq: uniq}
}

// viewOf builds a View over n processes from explicit per-process announce
// prefixes: anns[p] lists the announcements of process p included in the view
// (oldest first).
func viewOf(n int, anns [][]spec.Operation) View {
	heads := make([]*conslist.Node[Ann], n)
	for p := 0; p < n; p++ {
		for _, op := range anns[p] {
			heads[p] = conslist.Push(heads[p], Ann{Proc: p, Op: op})
		}
	}
	return NewView(heads)
}

func TestViewBasics(t *testing.T) {
	op1 := mkOp(spec.MethodEnq, 1, 1)
	op2 := mkOp(spec.MethodEnq, 2, 2)
	v := viewOf(2, [][]spec.Operation{{op1}, {op2}})
	if v.Size() != 2 {
		t.Fatalf("Size = %d", v.Size())
	}
	if !v.ContainsAnn(0, op1) || !v.ContainsAnn(1, op2) {
		t.Fatal("ContainsAnn missing announced ops")
	}
	if v.ContainsAnn(0, op2) || v.ContainsAnn(5, op1) {
		t.Fatal("ContainsAnn claims unannounced ops")
	}
	small := viewOf(2, [][]spec.Operation{{op1}, nil})
	if !small.LeqOf(v) || v.LeqOf(small) {
		t.Fatal("containment comparison wrong")
	}
	if !v.Equal(v) || v.Equal(small) {
		t.Fatal("equality wrong")
	}
}

// TestFig9Exact reproduces Figure 9 literally: three processes, four
// operations, the views drawn in the figure, and the X(λ_E) reconstruction,
// which must be the tight history drawn at the top of the figure.
func TestFig9Exact(t *testing.T) {
	// p1 executes op1 then op1'; p2 executes op2 (pending); p3 executes op3.
	op1 := mkOp(spec.MethodEnq, 1, 1)  // Apply(op1) : a
	op1p := mkOp(spec.MethodEnq, 2, 2) // Apply(op1') : b
	op2 := mkOp(spec.MethodEnq, 3, 3)  // Apply(op2) : c (pending, no tuple)
	op3 := mkOp(spec.MethodEnq, 4, 4)  // Apply(op3) : d
	a, b, d := spec.ValueResp(10), spec.ValueResp(11), spec.ValueResp(13)

	view := viewOf(3, [][]spec.Operation{{op1}, nil, nil})
	viewP := viewOf(3, [][]spec.Operation{{op1, op1p}, {op2}, nil})
	viewPP := viewOf(3, [][]spec.Operation{{op1, op1p}, {op2}, {op3}})

	// λ_E = {(p1,op1,a,view), (p1,op1',b,view'), (p3,op3,d,view'')}.
	tuples := []Tuple{
		{Proc: 0, Op: op1, Res: a, View: view},
		{Proc: 0, Op: op1p, Res: b, View: viewP},
		{Proc: 2, Op: op3, Res: d, View: viewPP},
	}
	if err := ValidateViews(tuples); err != nil {
		t.Fatalf("figure views must satisfy Remark 7.2: %v", err)
	}
	x, err := BuildHistory(tuples, 3)
	if err != nil {
		t.Fatalf("BuildHistory: %v", err)
	}
	want := history.History{
		{Kind: history.Invoke, Proc: 0, ID: 1, Op: op1},
		{Kind: history.Return, Proc: 0, ID: 1, Op: op1, Res: a},
		{Kind: history.Invoke, Proc: 0, ID: 2, Op: op1p},
		{Kind: history.Invoke, Proc: 1, ID: 3, Op: op2},
		{Kind: history.Return, Proc: 0, ID: 2, Op: op1p, Res: b},
		{Kind: history.Invoke, Proc: 2, ID: 4, Op: op3},
		{Kind: history.Return, Proc: 2, ID: 4, Op: op3, Res: d},
	}
	if len(x) != len(want) {
		t.Fatalf("X(λ_E) has %d events, want %d:\n%s", len(x), len(want), x.String())
	}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v\nfull:\n%s", i, x[i], want[i], x.String())
		}
	}
	// Lemma 7.4 on the figure: X(λ_E) is equivalent to E with ≺ preserved,
	// hence similar in both directions.
	if !history.Similar(x, want) || !history.Similar(want, x) {
		t.Fatal("X(λ_E) must be similar to the drawn tight history in both directions")
	}
}

func TestValidateViewsSelfInclusion(t *testing.T) {
	op1 := mkOp(spec.MethodEnq, 1, 1)
	op2 := mkOp(spec.MethodEnq, 2, 2)
	// op2's tuple has a view lacking its own announcement.
	v := viewOf(2, [][]spec.Operation{{op1}, nil})
	tuples := []Tuple{{Proc: 1, Op: op2, Res: spec.OKResp(), View: v}}
	if err := ValidateViews(tuples); err == nil {
		t.Fatal("self-inclusion violation not detected")
	}
}

func TestValidateViewsComparability(t *testing.T) {
	op1 := mkOp(spec.MethodEnq, 1, 1)
	op2 := mkOp(spec.MethodEnq, 2, 2)
	vA := viewOf(2, [][]spec.Operation{{op1}, nil})
	vB := viewOf(2, [][]spec.Operation{nil, {op2}})
	tuples := []Tuple{
		{Proc: 0, Op: op1, Res: spec.OKResp(), View: vA},
		{Proc: 1, Op: op2, Res: spec.OKResp(), View: vB},
	}
	if err := ValidateViews(tuples); err == nil {
		t.Fatal("incomparable views not detected")
	}
	if _, err := BuildHistory(tuples, 2); err == nil {
		t.Fatal("BuildHistory must reject incomparable views")
	}
}

func TestValidateViewsProcessSequentiality(t *testing.T) {
	opA := mkOp(spec.MethodEnq, 1, 1)
	opB := mkOp(spec.MethodEnq, 2, 2)
	both := viewOf(1, [][]spec.Operation{{opA, opB}})
	tuples := []Tuple{
		{Proc: 0, Op: opA, Res: spec.OKResp(), View: both},
		{Proc: 0, Op: opB, Res: spec.OKResp(), View: both},
	}
	if err := ValidateViews(tuples); err == nil {
		t.Fatal("process sequentiality violation not detected")
	}
}

func TestBuildHistoryEmpty(t *testing.T) {
	h, err := BuildHistory(nil, 3)
	if err != nil || len(h) != 0 {
		t.Fatalf("BuildHistory(nil) = %v, %v", h, err)
	}
}

func TestBuildHistoryDeduplicates(t *testing.T) {
	op1 := mkOp(spec.MethodEnq, 1, 1)
	v := viewOf(1, [][]spec.Operation{{op1}})
	tup := Tuple{Proc: 0, Op: op1, Res: spec.OKResp(), View: v}
	h, err := BuildHistory([]Tuple{tup, tup, tup}, 1)
	if err != nil {
		t.Fatalf("BuildHistory: %v", err)
	}
	if len(h) != 2 {
		t.Fatalf("deduplication failed: %d events\n%s", len(h), h.String())
	}
}

// TestBuildHistoryPendingOnly: announcements visible in views but without
// tuples appear as pending invocations.
func TestBuildHistoryPendingOnly(t *testing.T) {
	op1 := mkOp(spec.MethodEnq, 1, 1)
	op2 := mkOp(spec.MethodEnq, 2, 2)
	v := viewOf(2, [][]spec.Operation{{op1}, {op2}})
	tuples := []Tuple{{Proc: 0, Op: op1, Res: spec.OKResp(), View: v}}
	h, err := BuildHistory(tuples, 2)
	if err != nil {
		t.Fatalf("BuildHistory: %v", err)
	}
	pend := h.Pending()
	if len(pend) != 1 || pend[0].Proc != 1 {
		t.Fatalf("expected op2 pending, got %+v\n%s", pend, h.String())
	}
}

func TestBuildHistoryArityMismatch(t *testing.T) {
	op1 := mkOp(spec.MethodEnq, 1, 1)
	v := viewOf(2, [][]spec.Operation{{op1}, nil})
	tuples := []Tuple{{Proc: 0, Op: op1, Res: spec.OKResp(), View: v}}
	if _, err := BuildHistory(tuples, 5); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestBuildHistoryMissingSelfInclusion(t *testing.T) {
	// A tuple whose own announcement is not in its view yields an ill-formed
	// reconstruction (a response without invocation) and must error.
	op1 := mkOp(spec.MethodEnq, 1, 1)
	op2 := mkOp(spec.MethodEnq, 2, 2)
	onlyOp1 := viewOf(2, [][]spec.Operation{{op1}, nil})
	tuples := []Tuple{
		{Proc: 0, Op: op1, Res: spec.OKResp(), View: onlyOp1},
		{Proc: 1, Op: op2, Res: spec.OKResp(), View: onlyOp1},
	}
	if _, err := BuildHistory(tuples, 2); err == nil {
		t.Fatal("missing self-inclusion accepted")
	}
}

func TestViewLeqArityMismatch(t *testing.T) {
	a := viewOf(2, [][]spec.Operation{nil, nil})
	b := viewOf(3, [][]spec.Operation{nil, nil, nil})
	if a.LeqOf(b) || b.LeqOf(a) {
		t.Fatal("views over different arities must be incomparable")
	}
}
