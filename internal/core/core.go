// Package core implements the paper's primary contribution:
//
//   - the class DRV and the A* construction of Figure 7 (DRV),
//   - views, their properties (Remark 7.2) and the X(λ) history
//     reconstruction of §7.3.3 (Tuple, BuildHistory),
//   - the wait-free predictive verifier of Figure 10 (Verifier),
//   - the self-enforced implementation of Figure 11 (Enforced),
//   - the decoupled variant of Figure 12 (Decoupled).
//
// All algorithms communicate exclusively through the linearizable snapshot
// objects of internal/snapshot (read/write base objects only, per the paper's
// consensus-number-one requirement) and represent the ever-growing announce
// and result sets as persistent cons-lists (§9.1's bounded representation).
package core

import (
	"repro/internal/conslist"
	"repro/internal/spec"
)

// Implementation is the black box A of §3: an arbitrary concurrent
// implementation that exposes the single high-level operation Apply.
// Implementations must be safe for concurrent use by distinct process
// indices; the caller guarantees each process index is driven by one
// goroutine at a time (processes are sequential, §2).
type Implementation interface {
	Apply(proc int, op spec.Operation) spec.Response
	Name() string
}

// Ann is an invocation pair (p_i, op_i) as announced in Line 01–02 of A*
// (Figure 7).
type Ann struct {
	Proc int
	Op   spec.Operation
}

// View is a view λ (§7.3): the set of invocation pairs a process collected
// with its Snapshot step. It is represented by the per-process announce-list
// heads observed in the snapshot; because each process announces by pushing
// onto its own persistent list, a view is fully determined by how many
// announcements of each process it contains, and views are compared by those
// counts.
type View struct {
	heads  []*conslist.Node[Ann]
	counts []int
}

// NewView wraps the heads returned by a scan of the announce snapshot.
func NewView(heads []*conslist.Node[Ann]) View {
	counts := make([]int, len(heads))
	for i, h := range heads {
		counts[i] = h.Depth()
	}
	return View{heads: heads, counts: counts}
}

// Counts returns the per-process announcement counts of the view. The result
// is shared; callers must not modify it.
func (v View) Counts() []int { return v.counts }

// Size returns |λ|, the number of invocation pairs in the view.
func (v View) Size() int {
	total := 0
	for _, c := range v.counts {
		total += c
	}
	return total
}

// LeqOf reports whether v ⊆ w (containment comparability, Remark 7.2(2),
// reduces to pointwise counts under the prefix property).
func (v View) LeqOf(w View) bool {
	if len(v.counts) != len(w.counts) {
		return false
	}
	for i := range v.counts {
		if v.counts[i] > w.counts[i] {
			return false
		}
	}
	return true
}

// Equal reports whether v and w are the same view.
func (v View) Equal(w View) bool {
	return v.LeqOf(w) && w.LeqOf(v)
}

// ContainsAnn reports whether the invocation pair of (proc, op) is in the
// view, identified by op.Uniq.
func (v View) ContainsAnn(proc int, op spec.Operation) bool {
	if proc < 0 || proc >= len(v.heads) {
		return false
	}
	for n := v.heads[proc]; n != nil; n = n.Next() {
		if n.Value().Op.Uniq == op.Uniq {
			return true
		}
	}
	return false
}

// annsSince returns the invocation pairs of process p in v with per-process
// index in (from, counts[p]], oldest first.
func (v View) annsSince(p, from int) []Ann {
	return v.heads[p].AscendingSince(from)
}

// Tuple is a 4-tuple (p_i, op_i, y_i, λ_i) as accumulated by the verifier of
// Figure 10 and the self-enforced implementation of Figure 11.
type Tuple struct {
	Proc int
	Op   spec.Operation
	Res  spec.Response
	View View
}
