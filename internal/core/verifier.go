package core

import (
	"repro/internal/conslist"
	"repro/internal/genlin"
	"repro/internal/history"
	"repro/internal/snapshot"
	"repro/internal/spec"
)

// Report is an (ERROR, X(τ)) report of the verifier (Line 11 of Figure 10):
// a witness history of A* that does not belong to the object. Predictive
// soundness (Theorem 8.1) guarantees the witness really is a history of A*.
type Report struct {
	Proc    int
	Witness history.History
}

// Verifier is the wait-free predictive verifier V_O of Figure 10 for an
// object O in GenLin and an implementation A* in DRV. It uses only read/write
// base objects (the snapshots) and O(n) snapshot operations per iteration.
type Verifier struct {
	n   int
	drv *DRV
	obj genlin.Object
	m   snapshot.Snapshot[*conslist.Node[Tuple]]
	// res[p] is process p's local res_p set (Line 01/06), a persistent list
	// read and written only by p.
	res []*conslist.Node[Tuple]
}

// VerifierOption configures a Verifier.
type VerifierOption func(*Verifier)

// WithResultSnapshot replaces the default Afek result snapshot M.
func WithResultSnapshot(s snapshot.Snapshot[*conslist.Node[Tuple]]) VerifierOption {
	return func(v *Verifier) { v.m = s }
}

// NewVerifier builds V_O over an existing A* (Figure 10).
func NewVerifier(drv *DRV, obj genlin.Object, opts ...VerifierOption) *Verifier {
	v := &Verifier{
		n:   drv.N(),
		drv: drv,
		obj: obj,
		res: make([]*conslist.Node[Tuple], drv.N()),
	}
	for _, opt := range opts {
		opt(v)
	}
	if v.m == nil {
		v.m = snapshot.NewAfek[*conslist.Node[Tuple]](drv.N())
	}
	return v
}

// N returns the number of processes.
func (v *Verifier) N() int { return v.n }

// Object returns the object being verified.
func (v *Verifier) Object() genlin.Object { return v.obj }

// Do executes one iteration of the while loop of Figure 10 (Lines 04–12) for
// process proc with the chosen operation op: it applies op through A*,
// publishes the 4-tuple, snapshots all published tuples, reconstructs X(τ)
// and tests membership in O. A non-nil Report is the (ERROR, X(τ)) report.
func (v *Verifier) Do(proc int, op spec.Operation) (spec.Response, View, *Report) {
	// Lines 04–05.
	y, view := v.drv.Apply(proc, op)
	// Lines 06–07.
	v.res[proc] = conslist.Push(v.res[proc], Tuple{Proc: proc, Op: op, Res: y, View: view})
	v.m.Update(proc, v.res[proc])
	// Lines 08–09.
	tuples := v.collect(proc)
	// Lines 10–12.
	if rep := v.judge(proc, tuples); rep != nil {
		return y, view, rep
	}
	return y, view, nil
}

// collect performs Lines 08–09: scan M and take the union of all entries.
func (v *Verifier) collect(proc int) []Tuple {
	heads := v.m.Scan(proc)
	var tuples []Tuple
	for _, h := range heads {
		tuples = append(tuples, h.Ascending()...)
	}
	return tuples
}

// judge performs Lines 10–12: reconstruct X(τ) and test membership.
func (v *Verifier) judge(proc int, tuples []Tuple) *Report {
	x, err := BuildHistory(tuples, v.n)
	if err != nil {
		// Corrupted views cannot come from a DRV implementation; whatever
		// produced them is certainly not correct with respect to O.
		return &Report{Proc: proc, Witness: x}
	}
	if !v.obj.Contains(x) {
		return &Report{Proc: proc, Witness: x}
	}
	return nil
}

// Certify returns a history similar to the current history of the wrapped
// implementation (Theorem 8.2(3)): the X of a fresh snapshot of the
// published tuples. The caller can retain it as an audit certificate.
func (v *Verifier) Certify(proc int) (history.History, error) {
	return BuildHistory(v.collect(proc), v.n)
}

// RunProc drives the infinite while loop of Figure 10 for one process: it
// draws operations from next and reports errors until stop is closed. It is
// a convenience for long-running monitors; tests and short-lived callers use
// Do directly.
func (v *Verifier) RunProc(proc int, stop <-chan struct{}, next func() spec.Operation, report func(Report)) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		_, _, rep := v.Do(proc, next())
		if rep != nil && report != nil {
			report(*rep)
		}
	}
}
