package core

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/conslist"
	"repro/internal/genlin"
	"repro/internal/history"
)

// IncVerifier is the incremental verification pipeline behind the decoupled
// variant (Figure 12): instead of re-flattening every published result list,
// re-running BuildHistory and re-deciding membership of the whole prefix on
// every loop iteration, it keeps the X(τ) assembly and the monitor state
// across sketch snapshots and charges each pass only for the newly published
// tuples.
//
// The assembly exploits the structure of §7.3.3: distinct views are totally
// ordered by containment, so as long as new tuples carry views at least as
// large as the current last view group, X grows by appending — the new
// group's missing invocations, then the new responses. A tuple published
// late (a slow producer whose view predates groups already emitted) breaks
// the append order; the pipeline then falls back to a full BuildHistory over
// every tuple seen and reloads the monitor, preserving exact equivalence
// with the non-incremental path.
//
// Verdicts come from check.Incremental when the object is linearizability of
// a sequential model (the common case), and from the object's own membership
// test on the reassembled history otherwise (one-shot tasks). Violations are
// sticky: GenLin objects are prefix-closed, so once the published history
// falls outside the object every extension does too.
//
// IncVerifier is not safe for concurrent use; the decoupled dispatcher owns
// one instance.
type IncVerifier struct {
	n   int
	obj genlin.Object

	inc   *check.Incremental // non-nil when obj is linearizability of a model
	hFull history.History    // assembled history for the generic-object path

	consumed   []int   // per-process count of tuples already ingested
	annPrev    []int   // announcements already emitted as invocations
	lastCounts []int   // view counts of the current last group; nil before the first tuple
	all        []Tuple // every distinct tuple seen, for rebuilds
	seen       map[uint64]struct{}
	pendingOp  map[int]uint64 // proc -> open invocation, for §2 well-formedness

	verdict check.Verdict
	err     error
	stats   IncVerifyStats
}

// IncVerifyStats counts the pipeline's work; cmd/stress prints them and
// EXPERIMENTS.md records them.
type IncVerifyStats struct {
	Passes   int // ingest calls that saw at least one new tuple
	Tuples   int // distinct tuples ingested
	Groups   int // view groups appended incrementally
	Rebuilds int // full X(τ) reconstructions (out-of-order publications)
	Check    check.IncStats
}

// NewIncVerifier builds the pipeline for n processes monitoring obj.
func NewIncVerifier(n int, obj genlin.Object) *IncVerifier {
	iv := &IncVerifier{
		n:         n,
		obj:       obj,
		consumed:  make([]int, n),
		annPrev:   make([]int, n),
		seen:      make(map[uint64]struct{}),
		pendingOp: make(map[int]uint64),
		verdict:   check.Yes,
	}
	if m := genlin.Model(obj); m != nil {
		iv.inc = check.NewIncremental(m)
	}
	return iv
}

// IngestHeads consumes a fresh scan of the result snapshot, ingesting only
// tuples published since the previous call. It reports whether anything new
// was processed.
func (iv *IncVerifier) IngestHeads(heads []*conslist.Node[Tuple]) bool {
	var delta []Tuple
	for p, h := range heads {
		if p >= iv.n {
			break
		}
		if h.Depth() > iv.consumed[p] {
			delta = append(delta, h.AscendingSince(iv.consumed[p])...)
		}
	}
	return iv.IngestTuples(delta)
}

// IngestTuples ingests a batch of newly published tuples (from one or more
// processes). Batches must be disjoint and each process's tuples must arrive
// in publication order — every tuple is a new position of its process's
// result list, which is how the IngestHeads cursor stays aligned. (An op
// *republished* at a new position by a corrupted producer is deduplicated by
// identity below; that consumes the position without re-checking the op.)
// It reports whether anything new was processed.
func (iv *IncVerifier) IngestTuples(delta []Tuple) bool {
	fresh := delta[:0:len(delta)]
	for _, t := range delta {
		if t.Proc >= 0 && t.Proc < iv.n {
			iv.consumed[t.Proc]++
		}
		if _, dup := iv.seen[t.Op.Uniq]; dup {
			continue
		}
		iv.seen[t.Op.Uniq] = struct{}{}
		iv.all = append(iv.all, t)
		fresh = append(fresh, t)
	}
	if len(fresh) == 0 {
		return false
	}
	iv.stats.Passes++
	iv.stats.Tuples += len(fresh)
	if iv.violated() {
		return true // sticky: retain the tuples, skip all checking
	}

	// Views must be appended in containment order; within one batch, order by
	// view size (total order among comparable views).
	sortTuplesByViewSize(fresh)

	var events history.History
	for _, t := range fresh {
		counts := t.View.Counts()
		if len(counts) != iv.n {
			iv.fail(fmt.Errorf("view arity %d, want %d", len(counts), iv.n), events)
			return true
		}
		switch {
		case iv.lastCounts == nil || leqCounts(iv.lastCounts, counts):
			if iv.lastCounts == nil || !eqCounts(iv.lastCounts, counts) {
				// A strictly larger view starts a new group: emit the
				// invocations of its new announcements first.
				for p := 0; p < iv.n; p++ {
					for _, ann := range t.View.annsSince(p, iv.annPrev[p]) {
						ev := history.Event{Kind: history.Invoke, Proc: ann.Proc, ID: ann.Op.Uniq, Op: ann.Op}
						if err := iv.admit(ev); err != nil {
							iv.fail(err, events)
							return true
						}
						events = append(events, ev)
					}
					iv.annPrev[p] = counts[p]
				}
				iv.lastCounts = append(iv.lastCounts[:0], counts...)
				iv.stats.Groups++
			}
			ev := history.Event{Kind: history.Return, Proc: t.Proc, ID: t.Op.Uniq, Op: t.Op, Res: t.Res}
			if err := iv.admit(ev); err != nil {
				iv.fail(err, events)
				return true
			}
			events = append(events, ev)
		default:
			// Late or incomparable view: the append order is broken, fall
			// back to a full reconstruction over everything seen (remaining
			// tuples of this batch included — they are already in iv.all).
			iv.rebuild()
			return true
		}
	}
	iv.judge(events)
	return true
}

// admit validates one event against §2 well-formedness. A violation means
// the published tuples cannot come from a DRV implementation over a
// linearizable snapshot (Remark 7.2); whatever produced them is certainly
// not correct with respect to the object.
func (iv *IncVerifier) admit(e history.Event) error {
	switch e.Kind {
	case history.Invoke:
		if open, busy := iv.pendingOp[e.Proc]; busy {
			return fmt.Errorf("process %d invokes op %d while op %d is pending", e.Proc, e.ID, open)
		}
		iv.pendingOp[e.Proc] = e.ID
	case history.Return:
		open, busy := iv.pendingOp[e.Proc]
		if !busy || open != e.ID {
			return fmt.Errorf("process %d responds to op %d with no matching invocation", e.Proc, e.ID)
		}
		delete(iv.pendingOp, e.Proc)
	}
	return nil
}

// judge hands the freshly assembled events to the monitor.
func (iv *IncVerifier) judge(events history.History) {
	if iv.inc != nil {
		iv.verdict = iv.inc.Append(events)
		iv.err = iv.inc.Err()
		iv.stats.Check = iv.inc.Stats()
		return
	}
	iv.hFull = append(iv.hFull, events...)
	if !iv.obj.Contains(iv.hFull) {
		iv.verdict = check.No
	}
}

// fail records a views/well-formedness corruption: sticky violation.
func (iv *IncVerifier) fail(err error, events history.History) {
	// Keep whatever was assembled so the witness shows the corrupted state.
	if iv.inc != nil {
		iv.inc.Append(events)
		iv.stats.Check = iv.inc.Stats()
	} else {
		iv.hFull = append(iv.hFull, events...)
	}
	iv.err = &ViewsError{Reason: err.Error()}
	iv.verdict = check.No
}

// rebuild reconstructs X(τ) from every tuple seen — the slow path taken when
// a late publication breaks the incremental append order — and reloads the
// monitor, restoring exact equivalence with the non-incremental verifier.
func (iv *IncVerifier) rebuild() {
	iv.stats.Rebuilds++
	h, err := BuildHistory(iv.all, iv.n)
	if err != nil {
		iv.err = err
		iv.verdict = check.No
		if iv.inc == nil {
			iv.hFull = h
		}
		return
	}
	// Recompute the assembly trackers from the rebuilt history.
	iv.lastCounts = nil
	for _, t := range iv.all {
		c := t.View.Counts()
		if iv.lastCounts == nil || leqCounts(iv.lastCounts, c) {
			iv.lastCounts = append(iv.lastCounts[:0], c...)
		}
	}
	copy(iv.annPrev, iv.lastCounts)
	iv.pendingOp = make(map[int]uint64)
	for _, o := range h.Ops() {
		if !o.Complete {
			iv.pendingOp[o.Proc] = o.ID
		}
	}
	if iv.inc != nil {
		iv.verdict = iv.inc.Reset(h)
		iv.err = iv.inc.Err()
		iv.stats.Check = iv.inc.Stats()
		return
	}
	iv.hFull = h
	if iv.obj.Contains(h) {
		iv.verdict = check.Yes
	} else {
		iv.verdict = check.No
	}
}

// MarkCorrupt records a violation detected upstream (a scanner's cheap
// necessary-condition check), with the same sticky semantics as a views
// error found during assembly.
func (iv *IncVerifier) MarkCorrupt(reason string) {
	if iv.violated() {
		return
	}
	iv.err = &ViewsError{Reason: reason}
	iv.verdict = check.No
}

// violated reports whether the pipeline has a sticky violation.
func (iv *IncVerifier) violated() bool { return iv.verdict == check.No || iv.err != nil }

// Verdict returns the verdict for everything ingested so far.
func (iv *IncVerifier) Verdict() check.Verdict { return iv.verdict }

// Err returns the views/well-formedness corruption, if one was found.
func (iv *IncVerifier) Err() error { return iv.err }

// Witness returns the assembled history — the violation witness when the
// verdict is No. Callers must not modify it.
func (iv *IncVerifier) Witness() history.History {
	if iv.inc != nil {
		return iv.inc.History()
	}
	return iv.hFull
}

// Stats returns the pipeline counters so far.
func (iv *IncVerifier) Stats() IncVerifyStats { return iv.stats }

// sortTuplesByViewSize orders tuples by |λ| ascending (stable): comparable
// views are ordered by size, so this is containment order within a batch.
func sortTuplesByViewSize(ts []Tuple) {
	// Insertion sort: batches are small and usually already ordered.
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].View.Size() < ts[j-1].View.Size(); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func leqCounts(a, b []int) bool {
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}

func eqCounts(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
