package core

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/conslist"
	"repro/internal/genlin"
	"repro/internal/history"
)

// IncVerifier is the incremental verification pipeline behind the decoupled
// variant (Figure 12): instead of re-flattening every published result list,
// re-running BuildHistory and re-deciding membership of the whole prefix on
// every loop iteration, it keeps the X(τ) assembly and the monitor state
// across sketch snapshots and charges each pass only for the newly published
// tuples.
//
// The assembly exploits the structure of §7.3.3: distinct views are totally
// ordered by containment, so as long as new tuples carry views at least as
// large as the current last view group, X grows by appending — the new
// group's missing invocations, then the new responses. A tuple published
// late (a slow producer whose view predates groups already emitted) breaks
// the append order; the pipeline then falls back to a BuildHistory over
// every tuple emitted so far and reloads the monitor, preserving exact
// equivalence with the non-incremental path. The converse skew — a view
// arriving ahead of the response tuples it implies, which happens when
// scanner batches from different processes interleave — is tuple lag, not
// corruption, and is deferred until the missing tuples arrive (see blocked).
//
// Verdicts come from check.Incremental when the object is linearizability of
// a sequential model (the common case), and from the object's own membership
// test on the reassembled history otherwise (one-shot tasks). Violations are
// sticky: GenLin objects are prefix-closed, so once the published history
// falls outside the object every extension does too.
//
// With WithVerifierRetention the pipeline bounds its own memory in lockstep
// with the monitor's garbage collector: tuples whose assembled events fell
// behind the GC horizon are dropped from the rebuild buffer, the announce
// cons-lists are truncated at the consumed floor, and a late publication is
// re-assembled from the retained window against the monitor's GC base
// instead of from the whole history.
//
// IncVerifier is not safe for concurrent use; the decoupled dispatcher owns
// one instance.
type IncVerifier struct {
	n   int
	obj genlin.Object

	inc   *check.Incremental // non-nil when obj is linearizability of a model
	hFull history.History    // assembled history for the generic-object path

	consumed   []int   // per-process count of tuples already ingested
	annPrev    []int   // announcements already emitted as invocations
	lastCounts []int   // view counts of the current last group; nil before the first tuple
	all        []Tuple // distinct tuples retained for rebuilds, in return-event order
	seen       map[uint64]struct{}
	pendingOp  map[int]uint64 // proc -> open invocation, for §2 well-formedness

	// deferred holds tuples whose view groups cannot be emitted yet: a group
	// announcing a process's next invocation while that process's previous
	// response tuple has not arrived is evidence of tuple lag (scanner
	// batches from different processes are not a consistent cut), not of a
	// violation. They are retried, ahead of new arrivals, on the next ingest.
	deferred []Tuple

	cfg      check.Config          // monitor configuration; Retain also gates the assembler's own GC sync
	retain   bool                  // cfg.Retain, cleared on the generic-object path
	respHead int                   // response events the monitor GC'd (tuples already released)
	baseAnn  []int                 // per-process announce floor: invocations behind the GC horizon
	annHeads []*conslist.Node[Ann] // heads of the largest view seen, for announce truncation

	// Pipelined driving (cfg.Pipeline, DESIGN.md §2i): while pipe is live the
	// monitor may be inside a previous round's Append on the checker
	// goroutine; passBase is the stats snapshot a speculative assembly pass
	// rolls back to when the join reveals the stream was already refuted.
	pipe       *checkPipe
	inflight   bool
	passBase   *IncVerifyStats
	pipeRounds int
	pipeStalls int
	pipeWaitNs int64
	wcache     []check.WorkerStat // WorkerStats snapshot from the last join

	verdict check.Verdict
	err     error
	stats   IncVerifyStats
}

// IncVerifyStats counts the pipeline's work; cmd/stress prints them and
// EXPERIMENTS.md records them.
type IncVerifyStats struct {
	Passes    int // ingest calls that saw at least one new tuple
	Tuples    int // distinct tuples ingested
	Groups    int // view groups appended incrementally
	Rebuilds  int // X(τ) reconstructions (out-of-order publications)
	Deferrals int // ingest passes paused on a not-yet-published response tuple

	DiscardedTuples  int   // tuples released behind the GC horizon
	RetainedTuples   int   // tuples currently held for rebuilds (gauge)
	AnnNodesReleased int64 // announce-list nodes unlinked by retention

	// PipelineWaitNs is the time the dispatcher spent blocked in joins waiting
	// for the checker to hand the monitor back (Config.Pipeline only; zero
	// under sequential driving, and masked by the equivalence suites along
	// with Check.PipelineRounds/PipelineStalls).
	PipelineWaitNs int64

	Check check.IncStats
}

// IncVerifierOption configures an IncVerifier.
type IncVerifierOption func(*IncVerifier)

// WithVerifierConfig configures the inner monitor with a whole check.Config
// at once — the option the monitoring service and anything else holding a
// serialised configuration uses. Retention additionally makes the assembler
// release tuples and announce-list prefixes behind the monitor's GC horizon;
// it requires an object that is linearizability of a sequential model (the
// generic membership path needs the full history by definition) and is
// degraded to the unbounded assembler otherwise. The per-knob wrappers below
// mutate the same Config, so mixing them with WithVerifierConfig follows
// last-write-wins per knob (WithVerifierConfig replaces all of them).
func WithVerifierConfig(c check.Config) IncVerifierOption {
	return func(iv *IncVerifier) { iv.cfg = c }
}

// WithVerifierRetention opts the pipeline in to bounded-memory monitoring:
// the inner monitor runs under check.WithRetention(p) and the assembler
// releases tuples and announce-list prefixes behind the monitor's GC horizon.
// It requires an object that is linearizability of a sequential model (the
// generic membership path needs the full history by definition); the option
// is ignored otherwise. The caller must guarantee that nothing else traverses
// the announce cons-lists below the consumed floor — true for the decoupled
// pipeline, whose scanners read only view counts. Thin wrapper over
// check.Config (WithVerifierConfig).
func WithVerifierRetention(p check.RetentionPolicy) IncVerifierOption {
	return func(iv *IncVerifier) { iv.cfg.Retain = true; iv.cfg.Retention = p }
}

// WithVerifierParallelism runs the inner monitor's segment checks and
// frontier enumerations on up to n workers (check.WithParallelism): the
// dispatcher's ingest pass no longer serialises the independent per-frontier-
// state searches behind its single goroutine. Verdicts and stats are
// unchanged (the parallel engine is sequential-equivalent by construction);
// it requires an object that is linearizability of a sequential model and is
// ignored otherwise. Thin wrapper over check.Config (WithVerifierConfig).
func WithVerifierParallelism(n int) IncVerifierOption {
	return func(iv *IncVerifier) { iv.cfg.Parallelism = n }
}

// WithVerifierFastTier enables or disables the inner monitor's log-linear
// decision tier (check.WithFastTier; on by default). Verdicts are unchanged
// either way — the knob exists so soaks can measure the tier's contribution.
// Thin wrapper over check.Config (WithVerifierConfig).
func WithVerifierFastTier(enabled bool) IncVerifierOption {
	return func(iv *IncVerifier) { iv.cfg.NoFastTier = !enabled }
}

// WithVerifierPipeline overlaps X(τ) assembly with the previous burst's
// segment check (check.Config.Pipeline, DESIGN.md §2i): each judge hands the
// monitor to a dedicated checker goroutine over a 1-deep channel and the
// dispatcher assembles the next burst while the Append runs, joining at the
// next monitor-touching operation. Verdicts, sticky errors and stats are
// bit-identical to sequential driving (modulo the PipelineRounds/
// PipelineStalls/PipelineWaitNs counters); Verdict/Err/Stats/Witness reflect
// the last joined round until Sync is called. Requires an object that is
// linearizability of a sequential model; ignored on the generic-object path.
// Thin wrapper over check.Config (WithVerifierConfig).
func WithVerifierPipeline(enabled bool) IncVerifierOption {
	return func(iv *IncVerifier) { iv.cfg.Pipeline = enabled }
}

// NewIncVerifier builds the pipeline for n processes monitoring obj.
func NewIncVerifier(n int, obj genlin.Object, opts ...IncVerifierOption) *IncVerifier {
	iv := &IncVerifier{
		n:         n,
		obj:       obj,
		consumed:  make([]int, n),
		annPrev:   make([]int, n),
		seen:      make(map[uint64]struct{}),
		pendingOp: make(map[int]uint64),
		verdict:   check.Yes,
	}
	for _, opt := range opts {
		opt(iv)
	}
	m := genlin.Model(obj)
	if m == nil {
		iv.cfg.Retain = false
		iv.cfg.Retention = check.RetentionPolicy{}
	}
	iv.retain = iv.cfg.Retain
	if m != nil {
		if iv.retain {
			iv.baseAnn = make([]int, n)
		}
		iv.inc = check.NewIncremental(m, check.WithConfig(iv.cfg))
		if iv.cfg.Pipeline {
			iv.pipe = newCheckPipe(iv.inc)
		}
	}
	return iv
}

// WorkerStats returns the inner monitor's per-worker diagnostics (nil without
// WithVerifierParallelism or on the generic-object path). While a pipelined
// round is in flight it returns the snapshot taken at the last join — the
// live slices belong to the checker until the monitor is handed back.
func (iv *IncVerifier) WorkerStats() []check.WorkerStat {
	if iv.inc == nil {
		return nil
	}
	if iv.inflight {
		return iv.wcache
	}
	return iv.inc.WorkerStats()
}

// IngestHeads consumes a fresh scan of the result snapshot, ingesting only
// tuples published since the previous call. Because the scan is a
// linearizable snapshot, the delta is a consistent cut: a view announcing an
// operation always travels with (or behind) the response tuples it implies.
// It reports whether anything new was processed.
func (iv *IncVerifier) IngestHeads(heads []*conslist.Node[Tuple]) bool {
	var delta []Tuple
	for p, h := range heads {
		if p >= iv.n {
			break
		}
		if h.Depth() > iv.consumed[p] {
			delta = append(delta, h.AscendingSince(iv.consumed[p])...)
			iv.consumed[p] = h.Depth()
		}
	}
	return iv.ingest(delta)
}

// IngestTuples ingests a batch of newly published tuples (from one or more
// processes). Batches must be disjoint and each process's tuples must arrive
// in publication order — every tuple is a new position of its process's
// result list, which is how the IngestHeads cursor stays aligned. (An op
// *republished* at a new position by a corrupted producer is deduplicated by
// identity below; that consumes the position without re-checking the op.)
// It reports whether anything new was processed.
func (iv *IncVerifier) IngestTuples(delta []Tuple) bool {
	for _, t := range delta {
		if t.Proc >= 0 && t.Proc < iv.n {
			iv.consumed[t.Proc]++
		}
	}
	return iv.ingest(delta)
}

// stageBatch aligns the cursor for a scanner batch covering positions
// [from, from+len) of proc's result list and returns the positions not yet
// consumed. The dispatcher needs this because its catch-up scans can ingest
// positions that a scanner had already extracted and queued: counting those
// batches again would push the cursor past reality and skip tuples forever.
func (iv *IncVerifier) stageBatch(proc, from int, tuples []Tuple) []Tuple {
	if proc < 0 || proc >= iv.n {
		return tuples // malformed; the view arity check reports it
	}
	if skip := iv.consumed[proc] - from; skip > 0 {
		if skip >= len(tuples) {
			return nil
		}
		tuples = tuples[skip:]
	}
	iv.consumed[proc] += len(tuples)
	return tuples
}

// blocked reports whether starting a group with the given view counts would
// invoke an operation whose process still has an unreturned predecessor.
// That response tuple provably exists (a DRV producer publishes its tuple
// before its next announce, so any view containing announce N+1 was
// snapshotted after tuple N was published) but has not reached this verifier
// yet — the batch must wait for it, not be reported.
func (iv *IncVerifier) blocked(counts []int) bool {
	for p := 0; p < iv.n; p++ {
		if counts[p] > iv.annPrev[p] {
			if _, busy := iv.pendingOp[p]; busy || counts[p]-iv.annPrev[p] > 1 {
				return true
			}
		}
	}
	return false
}

// Blocked reports whether ingestion is paused on a response tuple that has
// not been delivered yet; a snapshot-consistent IngestHeads resolves it.
func (iv *IncVerifier) Blocked() bool { return len(iv.deferred) > 0 }

// ingest runs the assembly pipeline over cursor-aligned tuples.
func (iv *IncVerifier) ingest(delta []Tuple) bool {
	if iv.violated() {
		return len(delta) > 0 // sticky: consume the positions, keep nothing
	}
	fresh := delta[:0:len(delta)]
	for _, t := range delta {
		if _, dup := iv.seen[t.Op.Uniq]; dup {
			continue
		}
		iv.seen[t.Op.Uniq] = struct{}{}
		fresh = append(fresh, t)
	}
	if len(fresh) == 0 {
		return false
	}
	if iv.pipe != nil {
		// The pass runs speculatively: the previous round's Append may still
		// be in flight and could refute the stream, in which case the
		// sequential dispatcher would have answered this pass from the sticky
		// verdict without assembling anything. Snapshot the assembler counters
		// so the first join can roll the speculation back (abortPass).
		base := iv.stats
		iv.passBase = &base
		defer func() { iv.passBase = nil }()
	}
	iv.stats.Passes++
	iv.stats.Tuples += len(fresh)
	if len(iv.deferred) > 0 {
		fresh = append(iv.deferred, fresh...)
		iv.deferred = nil
	}

	// Views must be appended in containment order; within one batch, order by
	// view size (total order among comparable views). The rebuild buffer is
	// appended per emitted response, in the same order, so it stays aligned
	// with the response events of the assembled history — which is what lets
	// retention drop tuples in lockstep with the monitor's GC of the event
	// prefix.
	sortTuplesByViewSize(fresh)

	var events history.History
	for i, t := range fresh {
		counts := t.View.Counts()
		if len(counts) != iv.n {
			iv.fail(fmt.Errorf("view arity %d, want %d", len(counts), iv.n), events)
			return true
		}
		switch {
		case iv.lastCounts == nil || leqCounts(iv.lastCounts, counts):
			if iv.lastCounts == nil || !eqCounts(iv.lastCounts, counts) {
				if iv.blocked(counts) {
					// Tuple lag, not corruption: park the rest of the batch
					// (the missing response sorts before these views once it
					// arrives) and judge what was assembled so far.
					iv.deferred = append(iv.deferred, fresh[i:]...)
					iv.stats.Deferrals++
					iv.judge(events)
					return true
				}
				// A strictly larger view starts a new group: emit the
				// invocations of its new announcements first.
				for p := 0; p < iv.n; p++ {
					for _, ann := range t.View.annsSince(p, iv.annPrev[p]) {
						ev := history.Event{Kind: history.Invoke, Proc: ann.Proc, ID: ann.Op.Uniq, Op: ann.Op}
						if err := iv.admit(ev); err != nil {
							iv.fail(err, events)
							return true
						}
						events = append(events, ev)
					}
					iv.annPrev[p] = counts[p]
				}
				iv.lastCounts = append(iv.lastCounts[:0], counts...)
				iv.annHeads = t.View.heads
				iv.stats.Groups++
			}
			ev := history.Event{Kind: history.Return, Proc: t.Proc, ID: t.Op.Uniq, Op: t.Op, Res: t.Res}
			if err := iv.admit(ev); err != nil {
				iv.fail(err, events)
				return true
			}
			events = append(events, ev)
			iv.all = append(iv.all, t)
		default:
			// Late or incomparable view: the append order is broken, fall
			// back to a reconstruction over everything emitted plus this
			// tuple. Events assembled earlier in this batch are covered by
			// the reconstruction (their tuples are in iv.all), so they are
			// dropped rather than double-ingested; the rest of the batch
			// continues through the recomputed trackers.
			iv.all = append(iv.all, t)
			events = events[:0]
			iv.rebuild()
			if iv.violated() {
				return true
			}
		}
	}
	iv.judge(events)
	return true
}

// admit validates one event against §2 well-formedness. A violation means
// the published tuples cannot come from a DRV implementation over a
// linearizable snapshot (Remark 7.2); whatever produced them is certainly
// not correct with respect to the object.
func (iv *IncVerifier) admit(e history.Event) error {
	switch e.Kind {
	case history.Invoke:
		if open, busy := iv.pendingOp[e.Proc]; busy {
			return fmt.Errorf("process %d invokes op %d while op %d is pending", e.Proc, e.ID, open)
		}
		iv.pendingOp[e.Proc] = e.ID
	case history.Return:
		open, busy := iv.pendingOp[e.Proc]
		if !busy || open != e.ID {
			return fmt.Errorf("process %d responds to op %d with no matching invocation", e.Proc, e.ID)
		}
		delete(iv.pendingOp, e.Proc)
	}
	return nil
}

// judge hands the freshly assembled events to the monitor. Under pipelining
// this is the natural hand-off point: join the previous round (adopting its
// verdict — and discarding this pass's speculative assembly if it refuted the
// stream), then dispatch this round's Append to the checker and return to
// assembling.
func (iv *IncVerifier) judge(events history.History) {
	if iv.inc != nil {
		if iv.pipe != nil {
			iv.joinPipe(true)
			if iv.violated() {
				iv.abortPass()
				return
			}
			iv.dispatchCheck(events)
			return
		}
		iv.verdict = iv.inc.Append(events)
		iv.err = iv.inc.Err()
		iv.syncGC()
		iv.stats.Check = iv.inc.Stats()
		return
	}
	iv.hFull = append(iv.hFull, events...)
	if !iv.obj.Contains(iv.hFull) {
		iv.verdict = check.No
	}
}

// syncGC releases assembler state behind the monitor's GC horizon: tuples
// whose response events were collected leave the rebuild buffer (and the
// dedup set), per-process announce floors advance past collected
// invocations, and the announce cons-lists are truncated at the floor. Only
// meaningful under retention; a no-op otherwise.
//
// The alignment axes are the monitor's per-kind discard counters, not an
// event-prefix replica: under commit-point cuts the collected events are no
// longer a contiguous prefix of the assembled stream (carried producer
// invocations are restaged into the window), but response events are never
// restaged and the rebuild buffer is kept in response-event order — so the
// collected responses are exactly the oldest retained tuples, and the
// announce floors are exactly the monitor's per-process invocation counts.
func (iv *IncVerifier) syncGC() {
	if !iv.retain || iv.violated() {
		return
	}
	dropped := 0
	for d := iv.inc.DiscardedResponses(); iv.respHead < d; iv.respHead++ {
		t := iv.all[0]
		iv.all = iv.all[1:]
		delete(iv.seen, t.Op.Uniq)
		dropped++
	}
	advanced := false
	for p, d := range iv.inc.DiscardedInvocations() {
		if p < iv.n && d > iv.baseAnn[p] {
			iv.baseAnn[p] = d
			advanced = true
		}
	}
	if dropped > 0 {
		iv.stats.DiscardedTuples += dropped
	}
	if advanced && iv.annHeads != nil {
		for p := 0; p < iv.n && p < len(iv.annHeads); p++ {
			iv.stats.AnnNodesReleased += int64(iv.annHeads[p].TruncateBefore(iv.baseAnn[p]))
		}
	}
	iv.stats.RetainedTuples = len(iv.all)
}

// fail records a views/well-formedness corruption: sticky violation. Under
// pipelining it is a forced join: the monitor must be idle before the witness
// events are appended — and if the join reveals the previous round already
// refuted the stream, the sequential dispatcher would never have run this
// pass, so the speculation (including this corruption) is discarded in favour
// of the monitor's verdict.
func (iv *IncVerifier) fail(err error, events history.History) {
	if iv.pipe != nil {
		iv.joinPipe(false)
		if iv.violated() {
			iv.abortPass()
			return
		}
	}
	// Keep whatever was assembled so the witness shows the corrupted state.
	if iv.inc != nil {
		iv.inc.Append(events)
		iv.stats.Check = iv.inc.Stats()
	} else {
		iv.hFull = append(iv.hFull, events...)
	}
	iv.err = &ViewsError{Reason: err.Error()}
	iv.verdict = check.No
}

// rebuild reconstructs X(τ) from the retained tuples — the slow path taken
// when a late publication breaks the incremental append order — and reloads
// the monitor, restoring exact equivalence with the non-incremental verifier.
// Under retention the reconstruction covers only the window since the GC
// horizon, re-anchored at the monitor's GC base via ReloadWindow: a correct
// DRV producer cannot publish a tuple whose events precede the horizon (its
// invocation would have been pending, blocking a quiescent cut, or carried
// across a commit-point cut, which keeps its announce above the floor), so
// the windowed rebuild is exact for comparable-view streams; a corrupted
// stream whose evidence predates the horizon surfaces as a ViewsError
// instead.
func (iv *IncVerifier) rebuild() {
	if iv.pipe != nil {
		// Forced join: ReloadWindow/Reset drive the monitor directly, and the
		// reconstruction must start from the GC horizon the previous round
		// left behind. A violation revealed here aborts the pass (sequential
		// driving would have answered it from the sticky verdict).
		iv.joinPipe(false)
		if iv.violated() {
			iv.abortPass()
			return
		}
	}
	iv.stats.Rebuilds++
	var h history.History
	var err error
	if iv.retain {
		h, err = buildHistorySince(iv.all, iv.n, iv.baseAnn)
	} else {
		h, err = BuildHistory(iv.all, iv.n)
	}
	if err != nil {
		iv.err = err
		iv.verdict = check.No
		if iv.inc == nil {
			iv.hFull = h
		}
		return
	}
	// Recompute the assembly trackers from the rebuilt history.
	iv.lastCounts = nil
	for _, t := range iv.all {
		c := t.View.Counts()
		if iv.lastCounts == nil || leqCounts(iv.lastCounts, c) {
			iv.lastCounts = append(iv.lastCounts[:0], c...)
			iv.annHeads = t.View.heads
		}
	}
	copy(iv.annPrev, iv.lastCounts)
	iv.pendingOp = make(map[int]uint64)
	for _, o := range h.Ops() {
		if !o.Complete {
			iv.pendingOp[o.Proc] = o.ID
		}
	}
	if iv.inc != nil {
		if iv.retain {
			// Re-anchor at the GC base and realign the retained buffer with
			// the canonical response order of the reconstruction, which is
			// the order the monitor's collector will discard in.
			sortTuplesCanonical(iv.all)
			iv.verdict = iv.inc.ReloadWindow(h)
			iv.err = iv.inc.Err()
			iv.syncGC()
		} else {
			iv.verdict = iv.inc.Reset(h)
			iv.err = iv.inc.Err()
		}
		iv.stats.Check = iv.inc.Stats()
		return
	}
	iv.hFull = h
	if iv.obj.Contains(h) {
		iv.verdict = check.Yes
	} else {
		iv.verdict = check.No
	}
}

// MarkCorrupt records a violation detected upstream (a scanner's cheap
// necessary-condition check), with the same sticky semantics as a views
// error found during assembly.
func (iv *IncVerifier) MarkCorrupt(reason string) {
	// Forced join: the sequential dispatcher only reaches a MarkCorrupt after
	// the previous burst's Append returned, so the in-flight round's verdict
	// must be folded in first — a monitor No from that round wins over the
	// scanner's corruption report, exactly as it would sequentially.
	iv.joinPipe(false)
	if iv.violated() {
		return
	}
	iv.err = &ViewsError{Reason: reason}
	iv.verdict = check.No
}

// violated reports whether the pipeline has a sticky violation.
func (iv *IncVerifier) violated() bool { return iv.verdict == check.No || iv.err != nil }

// ConsumedOf returns how many of process p's published tuples have been
// ingested: the result-list depth below which this verifier never reads
// again. The decoupled dispatcher publishes it as its epoch cursor so
// scanners can release consumed cons-list prefixes.
func (iv *IncVerifier) ConsumedOf(p int) int { return iv.consumed[p] }

// Verdict returns the verdict for everything ingested so far.
func (iv *IncVerifier) Verdict() check.Verdict { return iv.verdict }

// Err returns the views/well-formedness corruption, if one was found.
func (iv *IncVerifier) Err() error { return iv.err }

// Witness returns the assembled history — the violation witness when the
// verdict is No. Callers must not modify it. Under pipelining it joins any
// in-flight round first (the monitor's window cannot be read mid-Append).
func (iv *IncVerifier) Witness() history.History {
	if iv.inc != nil {
		iv.joinPipe(false)
		return iv.inc.History()
	}
	return iv.hFull
}

// Stats returns the pipeline counters so far. Under pipelining the monitor
// half (Check) reflects the last joined round — call Sync for a settled
// snapshot — and carries the driver-maintained hand-off counters.
func (iv *IncVerifier) Stats() IncVerifyStats {
	st := iv.stats
	if iv.cfg.Pipeline && iv.inc != nil {
		st.Check.PipelineRounds = iv.pipeRounds
		st.Check.PipelineStalls = iv.pipeStalls
		st.PipelineWaitNs = iv.pipeWaitNs
	}
	return st
}

// sortTuplesByViewSize orders tuples by |λ| ascending (stable): comparable
// views are ordered by size, so this is containment order within a batch.
func sortTuplesByViewSize(ts []Tuple) {
	// Insertion sort: batches are small and usually already ordered.
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].View.Size() < ts[j-1].View.Size(); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func leqCounts(a, b []int) bool {
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}

func eqCounts(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
