// Package sim implements the paper's model of computation (§2) directly: n
// asynchronous processes that execute atomic base-object steps one at a time
// under a schedule chosen by an adversary. Unlike the Go runtime scheduler,
// sim schedules are explicit, deterministic and replayable, which is what the
// indistinguishability argument of Theorem 5.1 needs: the same programs run
// under two schedules and their local views are compared step by step.
//
// Programs are ordinary Go functions that perform all shared-memory access
// inside Env.Step closures; the scheduler runs exactly one step at a time, so
// step closures may touch shared Go data without further synchronisation
// (the grant/ack channel pair orders them).
package sim

import (
	"fmt"
	"math/rand"
	"sync"
)

// killed is the sentinel panic used to unwind a process goroutine when the
// simulation shuts down before the program finishes. It never escapes the
// package.
type killed struct{}

// Proc is one simulated process.
type Proc struct {
	id       int
	name     string
	grant    chan bool // scheduler -> proc: true = run one step, false = die
	ack      chan struct{}
	exited   chan struct{}
	finished bool
	crashed  bool
	steps    int
}

// ID returns the process index.
func (p *Proc) ID() int { return p.id }

// Steps returns how many steps the process has executed.
func (p *Proc) Steps() int { return p.steps }

// Finished reports whether the program returned.
func (p *Proc) Finished() bool { return p.finished }

// Env is the handle a program uses to execute steps.
type Env struct {
	p *Proc
}

// ID returns the index of the process running this program.
func (e *Env) ID() int { return e.p.id }

// Step executes action as a single atomic base-object step. It blocks until
// the scheduler grants the step; the action runs exclusively.
func (e *Env) Step(action func()) {
	run, ok := <-e.p.grant
	if !ok || !run {
		panic(killed{})
	}
	action()
	e.p.steps++
	e.p.ack <- struct{}{}
}

// Sim is the deterministic scheduler.
type Sim struct {
	procs []*Proc
	// start gates program execution: goroutines spawned by Spawn wait for it
	// so that all Spawn calls finish (and the procs slice is frozen) before
	// any program code runs.
	start     chan struct{}
	startOnce sync.Once
}

// New returns an empty simulation.
func New() *Sim { return &Sim{start: make(chan struct{})} }

func (s *Sim) begin() { s.startOnce.Do(func() { close(s.start) }) }

// Spawn adds a process running program and returns it. The program starts
// blocked on its first step.
func (s *Sim) Spawn(name string, program func(*Env)) *Proc {
	p := &Proc{
		id:     len(s.procs),
		name:   name,
		grant:  make(chan bool),
		ack:    make(chan struct{}),
		exited: make(chan struct{}),
	}
	s.procs = append(s.procs, p)
	go func() {
		defer close(p.exited)
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killed); !ok {
					panic(r) // programming error in the program: surface it
				}
			}
		}()
		<-s.start
		program(&Env{p: p})
	}()
	return p
}

// Crash marks a process crashed: it receives no further steps. Its goroutine
// is unwound when the simulation stops.
func (s *Sim) Crash(p *Proc) { p.crashed = true }

// Policy chooses the next process to step among the runnable ones.
type Policy interface {
	// Next returns an index into runnable (not a process id).
	Next(runnable []*Proc, step int) int
}

// RoundRobin cycles through runnable processes.
type RoundRobin struct{}

// Next implements Policy.
func (RoundRobin) Next(runnable []*Proc, step int) int { return step % len(runnable) }

// Seeded picks uniformly at random with a fixed seed.
type Seeded struct {
	rng *rand.Rand
}

// NewSeeded returns a seeded random policy.
func NewSeeded(seed int64) *Seeded { return &Seeded{rng: rand.New(rand.NewSource(seed))} }

// Next implements Policy.
func (p *Seeded) Next(runnable []*Proc, _ int) int { return p.rng.Intn(len(runnable)) }

// Script replays an explicit sequence of process ids, then falls back to
// round-robin. Ids in the script that are not runnable are skipped.
type Script struct {
	Order []int
	pos   int
}

// Next implements Policy.
func (sc *Script) Next(runnable []*Proc, step int) int {
	for sc.pos < len(sc.Order) {
		want := sc.Order[sc.pos]
		sc.pos++
		for i, p := range runnable {
			if p.id == want {
				return i
			}
		}
	}
	return step % len(runnable)
}

// Stats summarises a run.
type Stats struct {
	Steps int
	// StepsByProc[i] is the number of steps process i executed.
	StepsByProc []int
}

// Run schedules steps under policy until no process is runnable or maxSteps
// steps have been granted. It can be called repeatedly to continue a run with
// a different policy.
func (s *Sim) Run(policy Policy, maxSteps int) Stats {
	s.begin()
	stats := Stats{StepsByProc: make([]int, len(s.procs))}
	for stats.Steps < maxSteps {
		var runnable []*Proc
		for _, p := range s.procs {
			if !p.finished && !p.crashed {
				runnable = append(runnable, p)
			}
		}
		if len(runnable) == 0 {
			break
		}
		p := runnable[policy.Next(runnable, stats.Steps)]
		select {
		case p.grant <- true:
			<-p.ack
			stats.Steps++
			stats.StepsByProc[p.id]++
		case <-p.exited:
			p.finished = true
		}
	}
	return stats
}

// Stop unwinds every process goroutine that is still blocked on a step. The
// simulation cannot be used afterwards.
func (s *Sim) Stop() {
	s.begin()
	for _, p := range s.procs {
		if p.finished {
			continue
		}
		select {
		case p.grant <- false:
			<-p.exited
			p.finished = true
		case <-p.exited:
			p.finished = true
		}
	}
}

// String describes the simulation state.
func (s *Sim) String() string {
	out := ""
	for _, p := range s.procs {
		out += fmt.Sprintf("p%d(%s): steps=%d finished=%v crashed=%v\n", p.id+1, p.name, p.steps, p.finished, p.crashed)
	}
	return out
}
