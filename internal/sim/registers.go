package sim

import "repro/internal/snapshot"

// simRegister is a shared register whose every access is one scheduled step
// of the calling process. Exclusive execution of steps makes the plain field
// access safe.
type simRegister[T any] struct {
	s *Sim
	v T
}

func (r *simRegister[T]) Load(proc int) T {
	var out T
	(&Env{p: r.s.procs[proc]}).Step(func() { out = r.v })
	return out
}

func (r *simRegister[T]) Store(proc int, v T) {
	(&Env{p: r.s.procs[proc]}).Step(func() { r.v = v })
}

// Provider returns a snapshot.Provider backed by the simulation: algorithms
// built over it (e.g. the Afek snapshot) execute one scheduled step per
// register access, so adversarial schedules can drive them into their corner
// cases deterministically.
//
// The registers must only be accessed from program goroutines spawned on s,
// passing the program's own process id.
func Provider[T any](s *Sim) snapshot.Provider[T] {
	return func(n int, initial T) []snapshot.Register[T] {
		regs := make([]snapshot.Register[T], n)
		for i := range regs {
			regs[i] = &simRegister[T]{s: s, v: initial}
		}
		return regs
	}
}
