package sim

import (
	"testing"

	"repro/internal/check"
	"repro/internal/history"
	"repro/internal/snapshot"
	"repro/internal/spec"
)

func TestDeterministicReplay(t *testing.T) {
	run := func() []int {
		var log []int
		s := New()
		for i := 0; i < 3; i++ {
			i := i
			s.Spawn("w", func(e *Env) {
				for k := 0; k < 5; k++ {
					e.Step(func() { log = append(log, i) })
				}
			})
		}
		s.Run(NewSeeded(42), 1000)
		s.Stop()
		return log
	}
	a, b := run(), run()
	if len(a) != 15 || len(b) != 15 {
		t.Fatalf("runs incomplete: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestScriptSchedule(t *testing.T) {
	var log []int
	s := New()
	for i := 0; i < 2; i++ {
		i := i
		s.Spawn("w", func(e *Env) {
			for k := 0; k < 3; k++ {
				e.Step(func() { log = append(log, i) })
			}
		})
	}
	script := &Script{Order: []int{1, 1, 0, 0, 1, 0}}
	s.Run(script, 100)
	s.Stop()
	want := []int{1, 1, 0, 0, 1, 0}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestCrashStopsScheduling(t *testing.T) {
	s := New()
	count := 0
	p := s.Spawn("victim", func(e *Env) {
		for {
			e.Step(func() { count++ })
		}
	})
	s.Run(RoundRobin{}, 5)
	s.Crash(p)
	s.Run(RoundRobin{}, 5)
	if count != 5 {
		t.Fatalf("crashed process kept running: %d steps", count)
	}
	s.Stop()
}

func TestRunUntilAllFinish(t *testing.T) {
	s := New()
	p := s.Spawn("short", func(e *Env) {
		e.Step(func() {})
		e.Step(func() {})
	})
	stats := s.Run(RoundRobin{}, 100)
	if stats.Steps != 2 || !p.Finished() {
		t.Fatalf("stats = %+v, finished = %v", stats, p.Finished())
	}
	s.Stop()
}

func TestStopUnwindsBlockedProcs(t *testing.T) {
	s := New()
	s.Spawn("infinite", func(e *Env) {
		for {
			e.Step(func() {})
		}
	})
	s.Run(RoundRobin{}, 3)
	s.Stop() // must not hang
	if got := s.String(); got == "" {
		t.Fatal("String empty")
	}
}

// TestAfekOverSimSchedules runs the Afek snapshot over simulated memory under
// seeded adversarial schedules and verifies the recorded operation history is
// linearizable with respect to the sequential snapshot object. Every register
// access is an individually scheduled step, so torn double-collects and
// borrow paths are exercised deterministically.
func TestAfekOverSimSchedules(t *testing.T) {
	const n = 3
	for seed := int64(0); seed < 20; seed++ {
		s := New()
		snap := snapshot.NewAfekOver[int64](n, Provider[snapshot.Cell[int64]](s))
		var events history.History
		var uniq uint64
		for p := 0; p < n; p++ {
			p := p
			s.Spawn("proc", func(e *Env) {
				for k := 0; k < 4; k++ {
					if (k+p+int(seed))%2 == 0 {
						val := int64(p*100 + k + 1)
						var op spec.Operation
						e.Step(func() {
							uniq++
							op = spec.Operation{Method: spec.MethodWrite, Arg: spec.PackUpdate(p, val), Uniq: uniq}
							events = append(events, history.Event{Kind: history.Invoke, Proc: p, ID: op.Uniq, Op: op})
						})
						snap.Update(p, val)
						e.Step(func() {
							events = append(events, history.Event{Kind: history.Return, Proc: p, ID: op.Uniq, Op: op, Res: spec.OKResp()})
						})
					} else {
						var op spec.Operation
						e.Step(func() {
							uniq++
							op = spec.Operation{Method: spec.MethodRead, Uniq: uniq}
							events = append(events, history.Event{Kind: history.Invoke, Proc: p, ID: op.Uniq, Op: op})
						})
						view := snap.Scan(p)
						e.Step(func() {
							events = append(events, history.Event{Kind: history.Return, Proc: p, ID: op.Uniq, Op: op, Res: spec.ValueResp(spec.HashVec(view))})
						})
					}
				}
			})
		}
		s.Run(NewSeeded(seed), 1_000_000)
		s.Stop()
		h := events
		if err := h.Validate(); err != nil {
			t.Fatalf("seed %d: invalid history: %v", seed, err)
		}
		if len(h.Pending()) != 0 {
			t.Fatalf("seed %d: run did not complete", seed)
		}
		if !check.IsLinearizable(spec.SnapshotObj(n), h) {
			t.Fatalf("seed %d: Afek over sim not linearizable:\n%s", seed, h.String())
		}
	}
}

// TestAfekBorrowPathDeterministic forces the embedded-view borrow: a scanner
// is interleaved so that a writer completes two full Updates inside the scan.
func TestAfekBorrowPathDeterministic(t *testing.T) {
	s := New()
	snap := snapshot.NewAfekOver[int64](2, Provider[snapshot.Cell[int64]](s))
	var scanned []int64
	s.Spawn("scanner", func(e *Env) { // proc 0
		scanned = snap.Scan(0)
	})
	s.Spawn("writer", func(e *Env) { // proc 1
		for v := int64(1); v <= 6; v++ {
			snap.Update(1, v)
		}
	})
	// Let the scanner do its first collect (2 loads), then give the writer
	// room to complete several updates, then let the scanner continue.
	order := []int{0, 0}
	for i := 0; i < 200; i++ {
		order = append(order, 1)
	}
	s.Run(&Script{Order: order}, 1_000_000)
	s.Stop()
	if len(scanned) != 2 {
		t.Fatalf("scan returned %v", scanned)
	}
	// The scan must reflect one of the writer's installed values (or the
	// final state), never a torn or stale-initial view after observing
	// movement twice.
	if scanned[1] == 0 {
		t.Fatalf("scan returned initial value after writer progress: %v", scanned)
	}
}

func TestEnvID(t *testing.T) {
	s := New()
	var got int
	s.Spawn("a", func(e *Env) { e.Step(func() { got = e.ID() }) })
	p := s.Spawn("b", func(e *Env) { e.Step(func() {}) })
	s.Run(RoundRobin{}, 10)
	s.Stop()
	if got != 0 || p.ID() != 1 {
		t.Fatalf("ids wrong: got=%d p=%d", got, p.ID())
	}
}

// TestAfekSurvivesWriterCrash: a writer crashing mid-Update must not block a
// scanner (wait-freedom: the scanner eventually gets a clean double collect).
func TestAfekSurvivesWriterCrash(t *testing.T) {
	s := New()
	snap := snapshot.NewAfekOver[int64](2, Provider[snapshot.Cell[int64]](s))
	var scanned []int64
	scanner := s.Spawn("scanner", func(e *Env) {
		scanned = snap.Scan(0)
	})
	writer := s.Spawn("writer", func(e *Env) {
		for v := int64(1); ; v++ {
			snap.Update(1, v)
		}
	})
	// Let the writer make progress, crash it mid-operation, then let the
	// scanner run alone.
	s.Run(&Script{Order: []int{1, 1, 1, 1, 1, 1, 1}}, 7)
	s.Crash(writer)
	s.Run(RoundRobin{}, 10_000)
	if !scanner.Finished() {
		t.Fatal("scanner did not terminate after writer crash")
	}
	if len(scanned) != 2 {
		t.Fatalf("scan returned %v", scanned)
	}
	s.Stop()
}
