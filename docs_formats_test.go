package repro

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/history"
	"repro/internal/monitorapi"
	"repro/internal/spec"
	"repro/internal/traceconv"
)

// doctestFences extracts the fenced code blocks of a markdown file tagged
// `doctest:<name>` in their info string, keyed by name. The fences in
// docs/formats.md are executable examples: TestDocsFormats below decodes,
// checks and converts them, so the spec's examples cannot drift from the
// code.
func doctestFences(t *testing.T, path string) map[string]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	fences := make(map[string]string)
	var (
		name string
		body strings.Builder
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	inFence := false
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "```") {
			if inFence {
				if name != "" {
					if _, dup := fences[name]; dup {
						t.Fatalf("%s: duplicate doctest fence %q", path, name)
					}
					fences[name] = body.String()
				}
				inFence, name = false, ""
				body.Reset()
				continue
			}
			inFence = true
			for _, field := range strings.Fields(line[3:]) {
				if tag, ok := strings.CutPrefix(field, "doctest:"); ok {
					name = tag
				}
			}
			continue
		}
		if inFence && name != "" {
			body.WriteString(line)
			body.WriteByte('\n')
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if inFence {
		t.Fatalf("%s: unterminated code fence", path)
	}
	return fences
}

// decodeBoth runs a doctested envelope through both interchange decoders and
// requires them to agree — the same equivalence the fuzzer enforces, applied
// to the documentation's own examples.
func decodeBoth(t *testing.T, doc string) (history.History, string) {
	t.Helper()
	wholeH, wholeModel, err := monitorapi.DecodeHistory([]byte(doc))
	if err != nil {
		t.Fatalf("whole-file decode: %v", err)
	}
	hr, err := monitorapi.NewHistoryReader(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("streaming decode: %v", err)
	}
	streamH, err := hr.ReadAll()
	if err != nil {
		t.Fatalf("streaming decode: %v", err)
	}
	if len(wholeH) != len(streamH) || (len(wholeH) > 0 && !reflect.DeepEqual(wholeH, streamH)) {
		t.Fatalf("decoders disagree on a documented example (%d vs %d events)", len(wholeH), len(streamH))
	}
	if hr.Model() != wholeModel {
		t.Fatalf("decoders disagree on model: %q vs %q", wholeModel, hr.Model())
	}
	return wholeH, wholeModel
}

// TestDocsFormats executes every doctest fence in docs/formats.md.
func TestDocsFormats(t *testing.T) {
	fences := doctestFences(t, "docs/formats.md")
	want := []string{"queue-yes", "register-no", "jepsen-in", "jepsen-out", "clientlog-in", "clientlog-out"}
	for _, name := range want {
		if _, ok := fences[name]; !ok {
			t.Fatalf("docs/formats.md lacks doctest fence %q (have: %v)", name, keys(fences))
		}
	}

	// The two standalone envelopes decode and produce the verdict the prose
	// states.
	for _, tc := range []struct {
		fence, model string
		ok           bool
	}{
		{"queue-yes", "queue", true},
		{"register-no", "register", false},
	} {
		t.Run(tc.fence, func(t *testing.T) {
			h, model := decodeBoth(t, fences[tc.fence])
			if model != tc.model {
				t.Fatalf("model = %q, want %q", model, tc.model)
			}
			m, ok := spec.ByName(model)
			if !ok {
				t.Fatalf("model %q not registered", model)
			}
			if res := check.Linearizable(m, h); res.Ok != tc.ok {
				t.Fatalf("Linearizable = %v, want %v (the prose states the verdict)", res.Ok, tc.ok)
			}
		})
	}

	// Each adapter input converts to exactly the envelope documented next to
	// it — including ids and "at" timestamps.
	for _, tc := range []struct {
		in, out string
		convert func(r *strings.Reader) (traceconv.Converted, error)
	}{
		{"jepsen-in", "jepsen-out", func(r *strings.Reader) (traceconv.Converted, error) {
			return traceconv.FromJepsen(r, "queue")
		}},
		{"clientlog-in", "clientlog-out", func(r *strings.Reader) (traceconv.Converted, error) {
			return traceconv.FromClientLog(r, "queue")
		}},
	} {
		t.Run(tc.out, func(t *testing.T) {
			conv, err := tc.convert(strings.NewReader(fences[tc.in]))
			if err != nil {
				t.Fatalf("converting the documented input: %v", err)
			}
			var env monitorapi.HistoryEnvelope
			if err := json.Unmarshal([]byte(fences[tc.out]), &env); err != nil {
				t.Fatalf("parsing the documented output: %v", err)
			}
			if env.Version != monitorapi.HistoryFormatVersion || env.Model != conv.Model {
				t.Fatalf("documented envelope header {v%d %q} != converter output {v%d %q}",
					env.Version, env.Model, monitorapi.HistoryFormatVersion, conv.Model)
			}
			if !reflect.DeepEqual(env.Events, conv.Events) {
				t.Fatalf("documented conversion is stale:\ndocumented: %s\nconverter:  %s",
					mustJSON(env.Events), mustJSON(conv.Events))
			}
			// And the documented output is itself a valid interchange document
			// through both decoders.
			decodeBoth(t, fences[tc.out])
		})
	}
}

func keys(m map[string]string) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

func mustJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("<%v>", err)
	}
	return string(bytes.TrimSpace(b))
}
