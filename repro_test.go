package repro

import (
	"os"
	"sync"
	"testing"

	"repro/internal/history"
	"repro/internal/impls"
	"repro/internal/trace"
)

// TestFacadeQuickstart exercises the whole public API surface the way the
// README shows it.
func TestFacadeQuickstart(t *testing.T) {
	q := SelfEnforce(NewMSQueue(), 2, Queue())
	var uniq trace.UniqSource
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				enq := Operation{Method: "Enq", Arg: int64(100*p + i), Uniq: uniq.Next()}
				if _, rep := q.Apply(p, enq); rep != nil {
					t.Errorf("false error:\n%s", rep.Witness.String())
					return
				}
				deq := Operation{Method: "Deq", Uniq: uniq.Next()}
				if _, rep := q.Apply(p, deq); rep != nil {
					t.Errorf("false error:\n%s", rep.Witness.String())
					return
				}
			}
		}(p)
	}
	wg.Wait()
	cert, err := q.Certify(0)
	if err != nil {
		t.Fatalf("Certify: %v", err)
	}
	if !IsLinearizable(Queue(), cert) {
		t.Fatal("certificate not linearizable")
	}
}

func TestFacadeHistoryAPI(t *testing.T) {
	h := NewBuilder().
		Call(0, "Enq", 1, Response{Kind: 1}). // KindNone
		Call(1, "Deq", 0, Response{Kind: 2, Val: 1}).
		History()
	if !IsLinearizable(Queue(), h) {
		t.Fatal("linearizable history rejected")
	}
	lin, ok := Linearization(Queue(), h)
	if !ok || len(lin) != 2 {
		t.Fatalf("Linearization = %v, %v", lin, ok)
	}
}

func TestFacadeModels(t *testing.T) {
	for _, m := range []Model{Queue(), Stack(), Set(), PQueue(), Counter(), Register(0), Consensus()} {
		if m.Name() == "" {
			t.Fatal("unnamed model")
		}
	}
	if m, ok := ModelByName("queue"); !ok || m.Name() != "queue" {
		t.Fatal("ModelByName broken")
	}
}

func TestFacadeVerifierLayers(t *testing.T) {
	drv := NewDRV(NewAtomicCounter(), 2)
	v := NewVerifier(drv, Linearizability(Counter()))
	if _, _, rep := v.Do(0, Operation{Method: "Inc", Uniq: 1}); rep != nil {
		t.Fatal("false error")
	}
}

func TestFacadeDecoupled(t *testing.T) {
	d := NewDecoupled(NewAtomicCounter(), 2, 1, Counter(), func(Report) {})
	d.Apply(0, Operation{Method: "Inc", Uniq: 1})
	d.Close()
}

func TestFacadeDecoupledRetention(t *testing.T) {
	reports := 0
	d := NewDecoupled(NewAtomicCounter(), 2, 2, Counter(),
		func(Report) { reports++ }, WithRetention(RetentionPolicy{GCBatch: 1}))
	for i := uint64(1); i <= 200; i++ {
		d.Apply(0, Operation{Method: "Inc", Uniq: i})
	}
	d.Close()
	if reports != 0 {
		t.Fatalf("false reports under retention: %d", reports)
	}
	if st := d.Stats(); st.Verify.Check.DiscardedEvents == 0 {
		t.Fatalf("retention idle: %+v", st)
	}
}

func TestFacadeFaultDetection(t *testing.T) {
	buggy := impls.NewFaulty(impls.NewMSQueue(), impls.PhantomValue, 2, 1)
	q := SelfEnforce(buggy, 1, Queue())
	var uniq trace.UniqSource
	gen := trace.NewOpGen("queue", 1, &uniq)
	for i := 0; i < 100; i++ {
		if _, rep := q.Apply(0, gen.Next()); rep != nil {
			if IsLinearizable(Queue(), rep.Witness) {
				t.Fatal("witness not a violation")
			}
			return
		}
	}
	t.Fatal("no detection")
}

// TestLinverifyTestdata exercises the offline-checker wire format end to end
// against the shipped sample histories.
func TestLinverifyTestdata(t *testing.T) {
	cases := map[string]bool{
		"cmd/linverify/testdata/queue-ok.json":  true,
		"cmd/linverify/testdata/queue-bad.json": false,
	}
	for path, want := range cases {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		h, err := history.DecodeJSON(data)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if got := IsLinearizable(Queue(), h); got != want {
			t.Fatalf("%s: linearizable = %v, want %v", path, got, want)
		}
	}
}
