// Package repro is a Go reproduction of "Asynchronous Wait-Free Runtime
// Verification and Enforcement of Linearizability" (Castañeda and Rodríguez,
// PODC 2023; arXiv:2301.02638).
//
// The package is the public facade over the internal machinery:
//
//   - SelfEnforce wraps any concurrent object implementation into the
//     paper's self-enforced implementation V_{O,A} (Figure 11): every
//     non-ERROR response is runtime verified to be linearizable, using only
//     read/write base objects and wait-free code, and an ERROR comes with a
//     certified witness history.
//   - NewDRV (Figure 7) and NewVerifier (Figure 10) expose the two layers
//     separately; NewDecoupled (Figure 12) separates producers from
//     dedicated verifier goroutines.
//   - IsLinearizable and Linearization decide linearizability of explicit
//     histories (the predicate P_O of §3).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-vs-measured record.
package repro

import (
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/genlin"
	"repro/internal/history"
	"repro/internal/impls"
	"repro/internal/spec"
)

// Re-exported core vocabulary. These are aliases, so values flow freely
// between the facade and the internal packages.
type (
	// Operation describes one high-level operation invocation.
	Operation = spec.Operation
	// Response is a high-level operation's result.
	Response = spec.Response
	// Model is a sequential specification (Definition 4.1).
	Model = spec.Model
	// History is a finite sequence of invocation/response events (§2).
	History = history.History
	// Event is one invocation or response.
	Event = history.Event
	// Object is an abstract object of the class GenLin (§7.1).
	Object = genlin.Object
	// Implementation is a concurrent object under inspection (the paper's
	// black box A).
	Implementation = core.Implementation
	// Report is an (ERROR, witness) report.
	Report = core.Report
	// Enforced is the self-enforced implementation V_{O,A} (Figure 11).
	Enforced = core.Enforced
	// Verifier is the wait-free predictive verifier V_O (Figure 10).
	Verifier = core.Verifier
	// Decoupled is the decoupled variant D_{O,A} (Figure 12).
	Decoupled = core.Decoupled
	// DRV is an implementation A* in the class DRV (Figure 7).
	DRV = core.DRV
	// View is a view λ (§7.3).
	View = core.View
	// Builder constructs histories programmatically.
	Builder = history.Builder
)

// Sequential models of the paper's objects (Theorem 5.1's list).
var (
	Queue     = spec.Queue
	Stack     = spec.Stack
	Set       = spec.Set
	PQueue    = spec.PQueue
	Counter   = spec.Counter
	Register  = spec.Register
	Consensus = spec.Consensus
	// ModelByName resolves a model from its name ("queue", "stack", ...).
	ModelByName = spec.ByName
)

// NewBuilder returns an empty history builder.
func NewBuilder() *Builder { return history.NewBuilder() }

// Linearizability returns the GenLin object of all histories linearizable
// with respect to m (Remark 7.1, Lemma 7.1).
func Linearizability(m Model) Object { return genlin.Linearizability(m) }

// ConsensusTask returns the one-shot consensus task as a GenLin object
// (§9.3).
func ConsensusTask() Object { return genlin.ConsensusTask() }

// IsLinearizable decides whether h is linearizable with respect to m
// (Definition 4.2). This is the locally computable predicate P_O of §3.
func IsLinearizable(m Model, h History) bool { return check.IsLinearizable(m, h) }

// Linearization returns a sequential witness order for h when it is
// linearizable with respect to m.
func Linearization(m Model, h History) ([]check.LinOp, bool) {
	r := check.Linearizable(m, h)
	return r.Linearization, r.Ok
}

// SelfEnforce wraps an arbitrary implementation of the sequential object m
// for n processes into the paper's self-enforced implementation (Figure 11).
// Apply on the result either returns a runtime-verified response or an ERROR
// report with a certified witness; Certify returns an audit certificate at
// any time (Theorem 8.2).
func SelfEnforce(inner Implementation, n int, m Model) *Enforced {
	return core.NewEnforced(inner, n, genlin.Linearizability(m), nil)
}

// SelfEnforceObject is SelfEnforce for an arbitrary GenLin object (e.g. a
// task from ConsensusTask).
func SelfEnforceObject(inner Implementation, n int, obj Object) *Enforced {
	return core.NewEnforced(inner, n, obj, nil)
}

// NewDRV wraps an implementation into its DRV counterpart A* (Figure 7).
func NewDRV(inner Implementation, n int) *DRV { return core.NewDRV(inner, n) }

// NewVerifier builds the wait-free predictive verifier V_O over A*
// (Figure 10).
func NewVerifier(drv *DRV, obj Object) *Verifier { return core.NewVerifier(drv, obj) }

// NewDecoupled builds the decoupled self-enforced implementation D_{O,A}
// (Figure 12) with the given number of verifier goroutines (at least 1 for
// any verification to happen; 0 disables monitoring entirely). The verifiers
// run the incremental sharded pipeline of DESIGN.md §2 (delta checking with
// deduplicated reports — one per violation); onReport is called from
// verifier goroutines. Close it when done: it first drains and verifies
// everything published. Options: WithRetention bounds the pipeline's memory
// to the monitoring window (DESIGN.md §2b).
func NewDecoupled(inner Implementation, n, verifiers int, m Model, onReport func(Report), opts ...DecoupledOption) *Decoupled {
	return core.NewDecoupled(inner, n, verifiers, genlin.Linearizability(m), onReport, opts...)
}

// DecoupledOption configures NewDecoupled.
type DecoupledOption = core.DecoupledOption

// RetentionPolicy bounds a monitor's memory; zero values take defaults. See
// check.RetentionPolicy for the trade-offs.
type RetentionPolicy = check.RetentionPolicy

// WithRetention makes the decoupled verification pipeline garbage-collect
// committed history behind its quiescent-cut frontier, keeping memory
// O(window) instead of O(history) with verdicts unchanged (DESIGN.md §2b).
func WithRetention(p RetentionPolicy) DecoupledOption {
	return core.WithDecoupledRetention(p)
}

// Reference implementations of the paper's objects, usable as the black box
// A in examples and tests.
var (
	NewMSQueue        = impls.NewMSQueue
	NewTreiberStack   = impls.NewTreiberStack
	NewAtomicCounter  = impls.NewAtomicCounter
	NewAtomicRegister = impls.NewAtomicRegister
	NewCASConsensus   = impls.NewCASConsensus
	NewHMSet          = impls.NewHMSet
	NewMutexPQ        = impls.NewMutexPQ
	// ImplForModel returns the natural lock-free implementation of a model.
	ImplForModel = impls.ForModel
)
